//! Wire abstractions: the [`Wire`] trait plus two implementations —
//! an in-memory [`SimLink`] with virtual-clock accounting (used by the
//! figure harnesses) and a crossbeam-channel [`ChannelWire`] for real
//! concurrent client/server threads (used by integration tests and the
//! pipelined protocol variant).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::error::TransportError;
use crate::frame::Frame;
use crate::profile::LinkProfile;

/// Cumulative traffic counters for one wire endpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages sent from this endpoint.
    pub messages_sent: usize,
    /// Payload bytes sent (excluding frame headers).
    pub payload_bytes_sent: usize,
    /// Total encoded bytes sent (including frame headers).
    pub wire_bytes_sent: usize,
    /// Messages received by this endpoint.
    pub messages_received: usize,
    /// Payload bytes received.
    pub payload_bytes_received: usize,
    /// Total encoded bytes received.
    pub wire_bytes_received: usize,
}

impl TrafficStats {
    fn record_send(&mut self, f: &Frame) {
        self.messages_sent += 1;
        self.payload_bytes_sent += f.payload.len();
        self.wire_bytes_sent += f.encoded_len();
    }

    fn record_recv(&mut self, f: &Frame) {
        self.messages_received += 1;
        self.payload_bytes_received += f.payload.len();
        self.wire_bytes_received += f.encoded_len();
    }
}

/// A reliable, ordered, bidirectional message pipe.
pub trait Wire {
    /// Sends one frame to the peer.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] if the peer is gone.
    fn send(&mut self, frame: Frame) -> Result<(), TransportError>;

    /// Receives the next frame, blocking if the wire supports blocking.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] if the peer is gone and no
    /// messages remain; [`TransportError::Empty`] on an empty
    /// non-blocking wire.
    fn recv(&mut self) -> Result<Frame, TransportError>;

    /// Traffic counters for this endpoint.
    fn stats(&self) -> TrafficStats;
}

// ---------------------------------------------------------------------
// SimLink: same-thread simulated link with a virtual clock.
// ---------------------------------------------------------------------

/// Shared state of a simulated link.
struct SimShared {
    /// Messages in flight toward endpoint A.
    to_a: VecDeque<Frame>,
    /// Messages in flight toward endpoint B.
    to_b: VecDeque<Frame>,
    /// Virtual communication time accumulated over all messages.
    virtual_elapsed: Duration,
    /// Live endpoint count, for disconnect detection.
    endpoints: usize,
}

/// One endpoint of an in-memory simulated link.
///
/// `SimLink` is for *sequential* orchestration: the protocol driver
/// alternates between client and server in one thread, and the link
/// charges each message to a shared virtual clock according to its
/// [`LinkProfile`]. `recv` never blocks — an empty queue is a protocol
/// bug and surfaces as [`TransportError::Empty`].
pub struct SimLink {
    shared: Arc<Mutex<SimShared>>,
    profile: LinkProfile,
    /// True for the "A" endpoint.
    is_a: bool,
    stats: TrafficStats,
}

impl SimLink {
    /// Creates a connected pair of endpoints over `profile`.
    pub fn pair(profile: LinkProfile) -> (SimLink, SimLink) {
        let shared = Arc::new(Mutex::new(SimShared {
            to_a: VecDeque::new(),
            to_b: VecDeque::new(),
            virtual_elapsed: Duration::ZERO,
            endpoints: 2,
        }));
        let a = SimLink {
            shared: Arc::clone(&shared),
            profile: profile.clone(),
            is_a: true,
            stats: TrafficStats::default(),
        };
        let b = SimLink {
            shared,
            profile,
            is_a: false,
            stats: TrafficStats::default(),
        };
        (a, b)
    }

    /// Virtual communication time accumulated on this link so far
    /// (shared by both endpoints).
    pub fn virtual_elapsed(&self) -> Duration {
        self.shared.lock().virtual_elapsed
    }

    /// The link profile in effect.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }
}

impl Wire for SimLink {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        let mut shared = self.shared.lock();
        if shared.endpoints < 2 {
            return Err(TransportError::Disconnected);
        }
        shared.virtual_elapsed += self.profile.message_time(frame.encoded_len());
        self.stats.record_send(&frame);
        if self.is_a {
            shared.to_b.push_back(frame);
        } else {
            shared.to_a.push_back(frame);
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        let mut shared = self.shared.lock();
        let queue = if self.is_a {
            &mut shared.to_a
        } else {
            &mut shared.to_b
        };
        match queue.pop_front() {
            Some(f) => {
                self.stats.record_recv(&f);
                Ok(f)
            }
            None if shared.endpoints < 2 => Err(TransportError::Disconnected),
            None => Err(TransportError::Empty),
        }
    }

    fn stats(&self) -> TrafficStats {
        self.stats.clone()
    }
}

impl Drop for SimLink {
    fn drop(&mut self) {
        self.shared.lock().endpoints -= 1;
    }
}

// ---------------------------------------------------------------------
// ChannelWire: cross-thread wire over crossbeam channels.
// ---------------------------------------------------------------------

/// One endpoint of a cross-thread wire; `recv` blocks until a message
/// arrives or the peer disconnects.
pub struct ChannelWire {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    stats: TrafficStats,
}

impl ChannelWire {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (ChannelWire, ChannelWire) {
        let (tx_ab, rx_ab) = unbounded();
        let (tx_ba, rx_ba) = unbounded();
        (
            ChannelWire {
                tx: tx_ab,
                rx: rx_ba,
                stats: TrafficStats::default(),
            },
            ChannelWire {
                tx: tx_ba,
                rx: rx_ab,
                stats: TrafficStats::default(),
            },
        )
    }
}

impl Wire for ChannelWire {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        self.stats.record_send(&frame);
        self.tx
            .send(frame)
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        let f = self.rx.recv().map_err(|_| TransportError::Disconnected)?;
        self.stats.record_recv(&f);
        Ok(f)
    }

    fn stats(&self) -> TrafficStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t: u8, len: usize) -> Frame {
        Frame::new(t, vec![0u8; len]).unwrap()
    }

    #[test]
    fn simlink_delivers_in_order() {
        let (mut a, mut b) = SimLink::pair(LinkProfile::gigabit_lan());
        a.send(frame(1, 10)).unwrap();
        a.send(frame(2, 20)).unwrap();
        assert_eq!(b.recv().unwrap().msg_type, 1);
        assert_eq!(b.recv().unwrap().msg_type, 2);
        assert_eq!(b.recv(), Err(TransportError::Empty));
    }

    #[test]
    fn simlink_bidirectional() {
        let (mut a, mut b) = SimLink::pair(LinkProfile::gigabit_lan());
        a.send(frame(1, 1)).unwrap();
        b.send(frame(2, 2)).unwrap();
        assert_eq!(b.recv().unwrap().msg_type, 1);
        assert_eq!(a.recv().unwrap().msg_type, 2);
    }

    #[test]
    fn simlink_accumulates_virtual_time() {
        let profile = LinkProfile::modem_56k();
        let (mut a, mut b) = SimLink::pair(profile.clone());
        assert_eq!(a.virtual_elapsed(), Duration::ZERO);
        let f = frame(1, 128);
        let expect = profile.message_time(f.encoded_len());
        a.send(f).unwrap();
        assert_eq!(a.virtual_elapsed(), expect);
        assert_eq!(b.virtual_elapsed(), expect, "clock is shared");
        b.send(frame(2, 128)).unwrap();
        assert!(a.virtual_elapsed() > expect);
    }

    #[test]
    fn simlink_stats() {
        let (mut a, mut b) = SimLink::pair(LinkProfile::gigabit_lan());
        a.send(frame(1, 100)).unwrap();
        let _ = b.recv().unwrap();
        let sa = a.stats();
        assert_eq!(sa.messages_sent, 1);
        assert_eq!(sa.payload_bytes_sent, 100);
        assert!(sa.wire_bytes_sent > 100, "headers counted");
        let sb = b.stats();
        assert_eq!(sb.messages_received, 1);
        assert_eq!(sb.payload_bytes_received, 100);
    }

    #[test]
    fn simlink_disconnect() {
        let (mut a, b) = SimLink::pair(LinkProfile::gigabit_lan());
        drop(b);
        assert_eq!(a.send(frame(1, 1)), Err(TransportError::Disconnected));
        assert_eq!(a.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn simlink_drains_before_disconnect_error() {
        let (mut a, mut b) = SimLink::pair(LinkProfile::gigabit_lan());
        a.send(frame(9, 1)).unwrap();
        drop(a);
        // The queued message is still deliverable.
        assert_eq!(b.recv().unwrap().msg_type, 9);
        assert_eq!(b.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn channel_wire_across_threads() {
        let (mut a, mut b) = ChannelWire::pair();
        let t = std::thread::spawn(move || {
            let got = b.recv().unwrap();
            b.send(frame(got.msg_type + 1, 0)).unwrap();
            b.stats().messages_received
        });
        a.send(frame(41, 8)).unwrap();
        assert_eq!(a.recv().unwrap().msg_type, 42);
        assert_eq!(t.join().unwrap(), 1);
    }

    #[test]
    fn channel_wire_disconnect() {
        let (mut a, b) = ChannelWire::pair();
        drop(b);
        assert_eq!(a.send(frame(1, 0)), Err(TransportError::Disconnected));
        assert_eq!(a.recv(), Err(TransportError::Disconnected));
    }
}
