//! A real TCP transport: the same [`Wire`] interface over a socket, so
//! the protocol state machines can be exercised over an actual network
//! stack (loopback in tests, any address in deployments).
//!
//! The simulated [`SimLink`](crate::SimLink) remains the measurement
//! vehicle — real loopback timing says nothing about a 56 Kbps modem —
//! but running the identical client/server code over TCP demonstrates
//! that nothing in the protocol depends on the in-memory transports.
//!
//! [`StreamWire`] is generic over any blocking byte stream so the exact
//! framing/error logic that runs over a [`TcpStream`] in production can
//! be driven over a [`FaultyStream`](crate::FaultyStream) in tests.
//! [`TcpWire`] is the `TcpStream` instantiation.
//!
//! # Failure model
//!
//! Every I/O error is classified rather than flattened:
//!
//! * `WouldBlock` / `TimedOut` (an expired `SO_RCVTIMEO`/`SO_SNDTIMEO`
//!   deadline) → [`TransportError::TimedOut`];
//! * EOF, connection reset/aborted, broken pipe →
//!   [`TransportError::Disconnected`];
//! * `Interrupted` (EINTR) is **retried**, never surfaced;
//! * anything else → [`TransportError::Io`] with the OS message.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use bytes::BytesMut;
use pps_obs::{real_clock, SharedClock};

use crate::error::TransportError;
use crate::frame::Frame;
use crate::obs::WireMetrics;
use crate::retry::{RetryPolicy, RetryStats};
use crate::wire::{TrafficStats, Wire};

/// A framed, blocking wire over any byte stream (see [`TcpWire`]).
pub struct StreamWire<S> {
    stream: S,
    /// Receive reassembly buffer.
    buf: BytesMut,
    stats: TrafficStats,
    /// Absolute deadline checked between reads inside `recv`, so a
    /// peer trickling bytes mid-frame cannot dodge eviction by
    /// restarting the per-read socket timer with every byte.
    recv_deadline: Option<std::time::Instant>,
    /// Time source the deadline is checked against — the real clock
    /// unless a simulator injected a virtual one.
    clock: SharedClock,
    /// Optional shared counters (frames, bytes, timeouts) — see
    /// [`StreamWire::set_metrics`].
    metrics: Option<WireMetrics>,
    /// Distributed trace context attached to this connection — see
    /// [`StreamWire::set_trace`].
    trace: Option<pps_obs::TraceContext>,
}

impl<S: std::fmt::Debug> std::fmt::Debug for StreamWire<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamWire")
            .field("stream", &self.stream)
            .field("buffered", &self.buf.len())
            .field("stats", &self.stats)
            .field("recv_deadline", &self.recv_deadline)
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

/// The production instantiation of [`StreamWire`]: framing over a real
/// [`TcpStream`].
pub type TcpWire = StreamWire<TcpStream>;

impl<S> StreamWire<S> {
    /// Wraps an established stream.
    pub fn new(stream: S) -> Self {
        StreamWire {
            stream,
            buf: BytesMut::new(),
            stats: TrafficStats::default(),
            recv_deadline: None,
            clock: real_clock(),
            metrics: None,
            trace: None,
        }
    }

    /// Replaces the time source the receive deadline is checked against
    /// (see [`StreamWire::set_recv_deadline`]). Deadline `Instant`s must
    /// come from the same clock; the deterministic simulator injects a
    /// virtual clock here so transport deadlines expire in virtual time.
    pub fn set_clock(&mut self, clock: SharedClock) {
        self.clock = clock;
    }

    /// Attaches shared [`WireMetrics`] counters: every frame sent or
    /// received (and every timeout) is counted there in addition to the
    /// per-connection [`TrafficStats`]. Metrics are process-wide and
    /// survive the wire; stats die with it.
    pub fn set_metrics(&mut self, metrics: WireMetrics) {
        self.metrics = Some(metrics);
    }

    /// Attaches the distributed trace context this connection serves
    /// (PROTOCOL.md §9.4). The transport itself never reads it — frames
    /// are unchanged — it is a per-connection slot where the protocol
    /// layer parks the context (the client before the handshake, the
    /// server once the handshake reveals it) so instrumentation on
    /// either side of the wire object can retrieve it uniformly.
    pub fn set_trace(&mut self, trace: pps_obs::TraceContext) {
        self.trace = Some(trace);
    }

    /// The trace context attached with [`StreamWire::set_trace`].
    pub fn trace(&self) -> Option<pps_obs::TraceContext> {
        self.trace
    }

    /// Shared access to the underlying stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Arms (or with `None` disarms) an absolute receive deadline.
    ///
    /// Unlike a socket read timeout — which a slow-loris peer resets by
    /// delivering one byte per interval — this deadline is checked
    /// before every read inside [`Wire::recv`], bounding the total time
    /// a single frame may take to arrive. Once it passes, `recv` fails
    /// with [`TransportError::TimedOut`] (frames already buffered are
    /// still delivered). A blocking read in progress is not interrupted,
    /// so eviction lags by at most the socket read timeout, if one is
    /// armed.
    pub fn set_recv_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.recv_deadline = deadline;
    }
}

impl StreamWire<TcpStream> {
    /// Connects to a listening peer.
    ///
    /// # Errors
    /// [`TransportError::Io`] on connection failure.
    pub fn connect(addr: &str) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(|e| classify_io(&e))?;
        stream.set_nodelay(true).map_err(|e| classify_io(&e))?;
        Ok(Self::new(stream))
    }

    /// Connects with retry: on failure, sleeps according to `policy`'s
    /// exponential backoff (jitter drawn deterministically from `rng`)
    /// and tries again, up to `policy.max_attempts` total attempts.
    ///
    /// Returns the wire plus the [`RetryStats`] describing how many
    /// attempts were made and the exact backoff sequence slept.
    ///
    /// # Errors
    /// The error of the final attempt when every attempt fails.
    pub fn connect_with_retry(
        addr: &str,
        policy: &RetryPolicy,
        rng: &mut dyn rand::RngCore,
    ) -> Result<(Self, RetryStats), TransportError> {
        Self::connect_with_retry_on(addr, policy, rng, &*real_clock())
    }

    /// [`StreamWire::connect_with_retry`] with the backoff slept on an
    /// injected [`Clock`](pps_obs::Clock) — tests and simulators pass a
    /// virtual clock so the schedule is asserted, not waited out.
    ///
    /// # Errors
    /// The error of the final attempt when every attempt fails.
    pub fn connect_with_retry_on(
        addr: &str,
        policy: &RetryPolicy,
        rng: &mut dyn rand::RngCore,
        clock: &dyn pps_obs::Clock,
    ) -> Result<(Self, RetryStats), TransportError> {
        let mut stats = RetryStats::default();
        loop {
            stats.attempts += 1;
            match Self::connect(addr) {
                Ok(wire) => return Ok((wire, stats)),
                Err(e) => {
                    if stats.attempts >= policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    let delay = policy.delay_for(stats.attempts - 1, rng);
                    stats.delays.push(delay);
                    clock.sleep(delay);
                }
            }
        }
    }

    /// Creates a connected pair over an ephemeral loopback port: binds a
    /// listener, connects to it, and accepts — all on this thread.
    ///
    /// # Errors
    /// [`TransportError::Io`] on any socket failure.
    pub fn pair_loopback() -> Result<(TcpWire, TcpWire), TransportError> {
        let io = |e: std::io::Error| classify_io(&e);
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io)?;
        let addr = listener.local_addr().map_err(io)?;
        let client = TcpStream::connect(addr).map_err(io)?;
        client.set_nodelay(true).map_err(io)?;
        let (server, _) = listener.accept().map_err(io)?;
        server.set_nodelay(true).map_err(io)?;
        Ok((TcpWire::new(client), TcpWire::new(server)))
    }

    /// Arms (or with `None` disarms) the socket read deadline: a `recv`
    /// that waits longer than `timeout` for bytes fails with
    /// [`TransportError::TimedOut`].
    ///
    /// # Errors
    /// [`TransportError::Io`] when the OS rejects the option
    /// (`Some(Duration::ZERO)` is invalid at the socket layer).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| classify_io(&e))
    }

    /// Arms (or disarms) the socket write deadline, the mirror of
    /// [`StreamWire::set_read_timeout`] for `send`.
    ///
    /// # Errors
    /// [`TransportError::Io`] when the OS rejects the option.
    pub fn set_write_timeout(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        self.stream
            .set_write_timeout(timeout)
            .map_err(|e| classify_io(&e))
    }
}

/// Maps an OS I/O error to the transport taxonomy: expired socket
/// deadlines become [`TransportError::TimedOut`], peer-gone conditions
/// become [`TransportError::Disconnected`], and everything else keeps
/// its OS message as [`TransportError::Io`]. `Interrupted` never
/// reaches this function — the read/write loops retry it.
pub(crate) fn classify_io(e: &std::io::Error) -> TransportError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::TimedOut,
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::NotConnected => TransportError::Disconnected,
        _ => TransportError::Io(e.to_string()),
    }
}

impl<S: Read + Write> Wire for StreamWire<S> {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        let encoded = frame.encode();
        // `write_all` retries `Interrupted` internally; everything else
        // is classified, not flattened to Disconnected.
        self.stream
            .write_all(&encoded)
            .map_err(|e| self.note_error(classify_io(&e)))?;
        self.stats_record_send(&frame);
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        loop {
            if let Some(frame) = Frame::decode(&mut self.buf)? {
                self.stats_record_recv(&frame);
                return Ok(frame);
            }
            if let Some(deadline) = self.recv_deadline {
                if self.clock.now() >= deadline {
                    return Err(self.note_error(TransportError::TimedOut));
                }
            }
            let mut chunk = [0u8; 8192];
            let n = match self.stream.read(&mut chunk) {
                Ok(n) => n,
                // EINTR: a signal landed mid-read; the stream is intact.
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(self.note_error(classify_io(&e))),
            };
            if n == 0 {
                return Err(TransportError::Disconnected);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    fn stats(&self) -> TrafficStats {
        self.stats.clone()
    }
}

impl<S> StreamWire<S> {
    fn stats_record_send(&mut self, f: &Frame) {
        self.stats.messages_sent += 1;
        self.stats.payload_bytes_sent += f.payload.len();
        self.stats.wire_bytes_sent += f.encoded_len();
        if let Some(metrics) = &self.metrics {
            metrics.on_send(f);
        }
    }

    fn stats_record_recv(&mut self, f: &Frame) {
        self.stats.messages_received += 1;
        self.stats.payload_bytes_received += f.payload.len();
        self.stats.wire_bytes_received += f.encoded_len();
        if let Some(metrics) = &self.metrics {
            metrics.on_recv(f);
        }
    }

    fn note_error(&self, error: TransportError) -> TransportError {
        if let Some(metrics) = &self.metrics {
            metrics.on_error(&error);
        }
        error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn loopback_round_trip() {
        let (mut a, mut b) = TcpWire::pair_loopback().unwrap();
        a.send(Frame::new(7, vec![1, 2, 3]).unwrap()).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.msg_type, 7);
        assert_eq!(&got.payload[..], &[1, 2, 3]);
        // And back.
        b.send(Frame::new(8, vec![9]).unwrap()).unwrap();
        assert_eq!(a.recv().unwrap().msg_type, 8);
    }

    #[test]
    fn multiple_frames_reassembled() {
        let (mut a, mut b) = TcpWire::pair_loopback().unwrap();
        for i in 0..20u8 {
            a.send(Frame::new(i, vec![i; i as usize]).unwrap()).unwrap();
        }
        for i in 0..20u8 {
            let f = b.recv().unwrap();
            assert_eq!(f.msg_type, i);
            assert_eq!(f.payload.len(), i as usize);
        }
    }

    #[test]
    fn large_frame() {
        let (mut a, mut b) = TcpWire::pair_loopback().unwrap();
        let payload = vec![0xabu8; 1 << 20]; // 1 MiB
        let t = std::thread::spawn(move || {
            a.send(Frame::new(1, payload).unwrap()).unwrap();
            a // keep alive until received
        });
        let got = b.recv().unwrap();
        assert_eq!(got.payload.len(), 1 << 20);
        let _ = t.join().unwrap();
    }

    #[test]
    fn disconnect_detected() {
        let (a, mut b) = TcpWire::pair_loopback().unwrap();
        drop(a);
        assert_eq!(b.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn read_deadline_surfaces_as_timed_out_not_disconnected() {
        let (_a, mut b) = TcpWire::pair_loopback().unwrap();
        b.set_read_timeout(Some(Duration::from_millis(40))).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(b.recv(), Err(TransportError::TimedOut));
        assert!(start.elapsed() >= Duration::from_millis(40));
        // The peer is still alive: disarm the deadline and communicate.
        b.set_read_timeout(None).unwrap();
        let mut a = _a;
        a.send(Frame::new(3, vec![1]).unwrap()).unwrap();
        assert_eq!(b.recv().unwrap().msg_type, 3);
    }

    #[test]
    fn timeout_midframe_preserves_partial_buffer() {
        let (a, mut b) = TcpWire::pair_loopback().unwrap();
        // Send only part of a frame's bytes, raw.
        let f = Frame::new(9, vec![7u8; 64]).unwrap();
        let encoded = f.encode();
        let mut raw = a.stream;
        raw.write_all(&encoded[..10]).unwrap();
        b.set_read_timeout(Some(Duration::from_millis(40))).unwrap();
        assert_eq!(b.recv(), Err(TransportError::TimedOut));
        // Completing the frame later still decodes it — the partial
        // prefix was retained across the timeout.
        raw.write_all(&encoded[10..]).unwrap();
        b.set_read_timeout(None).unwrap();
        assert_eq!(b.recv().unwrap(), f);
    }

    #[test]
    fn stats_counted() {
        let (mut a, mut b) = TcpWire::pair_loopback().unwrap();
        a.send(Frame::new(1, vec![0; 100]).unwrap()).unwrap();
        let _ = b.recv().unwrap();
        assert_eq!(a.stats().messages_sent, 1);
        assert_eq!(a.stats().payload_bytes_sent, 100);
        assert_eq!(b.stats().messages_received, 1);
    }

    #[test]
    fn connect_failure_is_io_error() {
        // Port 1 on loopback is essentially never listening.
        let r = TcpWire::connect("127.0.0.1:1");
        assert!(matches!(r, Err(TransportError::Io(_))));
    }

    #[test]
    fn connect_with_retry_gives_up_after_max_attempts() {
        let mut rng = StdRng::seed_from_u64(11);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
        };
        let start = std::time::Instant::now();
        let err = TcpWire::connect_with_retry("127.0.0.1:1", &policy, &mut rng).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)));
        // Two sleeps happened (after attempts 1 and 2), never a third.
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn connect_with_retry_succeeds_once_listener_appears() {
        // Reserve a port, free it, start the listener only after a delay:
        // the first attempt must fail, a later one succeed.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let listener = TcpListener::bind(addr).unwrap();
            listener.accept().map(|_| ()).unwrap();
        });
        let mut rng = StdRng::seed_from_u64(12);
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(40),
            max_delay: Duration::from_millis(200),
        };
        let (_wire, stats) =
            TcpWire::connect_with_retry(&addr.to_string(), &policy, &mut rng).unwrap();
        assert!(stats.attempts > 1, "first attempt hit a closed port");
        assert_eq!(stats.delays.len(), stats.attempts as usize - 1);
        t.join().unwrap();
    }

    #[test]
    fn classification_taxonomy() {
        use std::io::Error;
        assert_eq!(
            classify_io(&Error::from(ErrorKind::WouldBlock)),
            TransportError::TimedOut
        );
        assert_eq!(
            classify_io(&Error::from(ErrorKind::TimedOut)),
            TransportError::TimedOut
        );
        for k in [
            ErrorKind::UnexpectedEof,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::BrokenPipe,
            ErrorKind::NotConnected,
        ] {
            assert_eq!(
                classify_io(&Error::from(k)),
                TransportError::Disconnected,
                "{k:?}"
            );
        }
        assert!(matches!(
            classify_io(&Error::from(ErrorKind::PermissionDenied)),
            TransportError::Io(_)
        ));
    }

    #[test]
    fn recv_deadline_evicts_a_midframe_trickler() {
        // The peer feeds one byte every 10 ms — each read succeeds, so a
        // per-read socket timeout never fires — but the absolute recv
        // deadline must still cut the session off.
        let (a, mut b) = TcpWire::pair_loopback().unwrap();
        let encoded = Frame::new(3, vec![9u8; 64]).unwrap().encode();
        let trickler = std::thread::spawn(move || {
            for byte in encoded {
                if a.get_ref().write_all(&[byte]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        b.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        b.set_recv_deadline(Some(std::time::Instant::now() + Duration::from_millis(100)));
        let start = std::time::Instant::now();
        assert_eq!(b.recv().unwrap_err(), TransportError::TimedOut);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "eviction is bounded by deadline + one read timeout"
        );
        drop(b);
        trickler.join().unwrap();

        // A frame already sitting in the reassembly buffer is still
        // delivered after expiry: send two back to back so the first
        // recv's read slurps both, then expire the deadline.
        let (mut c, mut d) = TcpWire::pair_loopback().unwrap();
        c.send(Frame::new(5, vec![1, 2]).unwrap()).unwrap();
        c.send(Frame::new(6, vec![3]).unwrap()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(d.recv().unwrap().msg_type, 5);
        d.set_recv_deadline(Some(std::time::Instant::now() - Duration::from_millis(1)));
        assert_eq!(d.recv().unwrap().msg_type, 6);
        assert_eq!(d.recv().unwrap_err(), TransportError::TimedOut);
    }
}
