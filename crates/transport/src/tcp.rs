//! A real TCP transport: the same [`Wire`] interface over a socket, so
//! the protocol state machines can be exercised over an actual network
//! stack (loopback in tests, any address in deployments).
//!
//! The simulated [`SimLink`](crate::SimLink) remains the measurement
//! vehicle — real loopback timing says nothing about a 56 Kbps modem —
//! but running the identical client/server code over TCP demonstrates
//! that nothing in the protocol depends on the in-memory transports.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use bytes::BytesMut;

use crate::error::TransportError;
use crate::frame::Frame;
use crate::wire::{TrafficStats, Wire};

/// A framed, blocking wire over a TCP stream.
pub struct TcpWire {
    stream: TcpStream,
    /// Receive reassembly buffer.
    buf: BytesMut,
    stats: TrafficStats,
}

impl TcpWire {
    /// Wraps an established stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpWire {
            stream,
            buf: BytesMut::new(),
            stats: TrafficStats::default(),
        }
    }

    /// Connects to a listening peer.
    ///
    /// # Errors
    /// [`TransportError::Io`] on connection failure.
    pub fn connect(addr: &str) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        Ok(Self::new(stream))
    }

    /// Creates a connected pair over an ephemeral loopback port: binds a
    /// listener, connects to it, and accepts — all on this thread.
    ///
    /// # Errors
    /// [`TransportError::Io`] on any socket failure.
    pub fn pair_loopback() -> Result<(TcpWire, TcpWire), TransportError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        let client = TcpStream::connect(addr).map_err(io_err)?;
        client.set_nodelay(true).map_err(io_err)?;
        let (server, _) = listener.accept().map_err(io_err)?;
        server.set_nodelay(true).map_err(io_err)?;
        Ok((TcpWire::new(client), TcpWire::new(server)))
    }
}

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io(e.to_string())
}

impl Wire for TcpWire {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        let encoded = frame.encode();
        self.stream
            .write_all(&encoded)
            .map_err(|_| TransportError::Disconnected)?;
        self.stats_record_send(&frame);
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        loop {
            if let Some(frame) = Frame::decode(&mut self.buf)? {
                self.stats_record_recv(&frame);
                return Ok(frame);
            }
            let mut chunk = [0u8; 8192];
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|_| TransportError::Disconnected)?;
            if n == 0 {
                return Err(TransportError::Disconnected);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    fn stats(&self) -> TrafficStats {
        self.stats.clone()
    }
}

impl TcpWire {
    fn stats_record_send(&mut self, f: &Frame) {
        self.stats.messages_sent += 1;
        self.stats.payload_bytes_sent += f.payload.len();
        self.stats.wire_bytes_sent += f.encoded_len();
    }

    fn stats_record_recv(&mut self, f: &Frame) {
        self.stats.messages_received += 1;
        self.stats.payload_bytes_received += f.payload.len();
        self.stats.wire_bytes_received += f.encoded_len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trip() {
        let (mut a, mut b) = TcpWire::pair_loopback().unwrap();
        a.send(Frame::new(7, vec![1, 2, 3]).unwrap()).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.msg_type, 7);
        assert_eq!(&got.payload[..], &[1, 2, 3]);
        // And back.
        b.send(Frame::new(8, vec![9]).unwrap()).unwrap();
        assert_eq!(a.recv().unwrap().msg_type, 8);
    }

    #[test]
    fn multiple_frames_reassembled() {
        let (mut a, mut b) = TcpWire::pair_loopback().unwrap();
        for i in 0..20u8 {
            a.send(Frame::new(i, vec![i; i as usize]).unwrap()).unwrap();
        }
        for i in 0..20u8 {
            let f = b.recv().unwrap();
            assert_eq!(f.msg_type, i);
            assert_eq!(f.payload.len(), i as usize);
        }
    }

    #[test]
    fn large_frame() {
        let (mut a, mut b) = TcpWire::pair_loopback().unwrap();
        let payload = vec![0xabu8; 1 << 20]; // 1 MiB
        let t = std::thread::spawn(move || {
            a.send(Frame::new(1, payload).unwrap()).unwrap();
            a // keep alive until received
        });
        let got = b.recv().unwrap();
        assert_eq!(got.payload.len(), 1 << 20);
        let _ = t.join().unwrap();
    }

    #[test]
    fn disconnect_detected() {
        let (a, mut b) = TcpWire::pair_loopback().unwrap();
        drop(a);
        assert_eq!(b.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn stats_counted() {
        let (mut a, mut b) = TcpWire::pair_loopback().unwrap();
        a.send(Frame::new(1, vec![0; 100]).unwrap()).unwrap();
        let _ = b.recv().unwrap();
        assert_eq!(a.stats().messages_sent, 1);
        assert_eq!(a.stats().payload_bytes_sent, 100);
        assert_eq!(b.stats().messages_received, 1);
    }

    #[test]
    fn connect_failure_is_io_error() {
        // Port 1 on loopback is essentially never listening.
        let r = TcpWire::connect("127.0.0.1:1");
        assert!(matches!(r, Err(TransportError::Io(_))));
    }
}
