//! Wire framing: a minimal length-prefixed message format.
//!
//! Layout (big-endian):
//!
//! ```text
//! +--------+--------+----------------+-----------------+
//! | magic  | type   | payload length | payload         |
//! | u16    | u8     | u32            | length bytes    |
//! +--------+--------+----------------+-----------------+
//! ```
//!
//! The magic word catches stream desynchronization; the type byte is
//! interpreted by the protocol layer.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::TransportError;

/// Frame magic word.
///
/// Revision history (PROTOCOL.md §6: any incompatible payload change
/// MUST change the magic so desynchronized peers fail fast):
///
/// * `0x5053` ("PS") — revisions through PR 4.
/// * `0x5054` — `IndexBatch` gained a leading sequence number and
///   message types 11–13 (`HelloAck`/`Resume`/`ResumeAck`) were
///   assigned for session resumption.
pub const FRAME_MAGIC: u16 = 0x5054;

/// Header size in bytes.
pub const HEADER_LEN: usize = 2 + 1 + 4;

/// Maximum payload size (64 MiB) — far above any protocol message; guards
/// against corrupt length fields allocating unbounded memory.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// A framed message: a protocol-defined type byte plus opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-defined message discriminant.
    pub msg_type: u8,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

impl Frame {
    /// Builds a frame from a type byte and payload.
    ///
    /// # Errors
    /// [`TransportError::FrameTooLarge`] above [`MAX_PAYLOAD`].
    pub fn new(msg_type: u8, payload: impl Into<Bytes>) -> Result<Self, TransportError> {
        let payload = payload.into();
        if payload.len() > MAX_PAYLOAD {
            return Err(TransportError::FrameTooLarge {
                size: payload.len(),
                max: MAX_PAYLOAD,
            });
        }
        Ok(Frame { msg_type, payload })
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u16(FRAME_MAGIC);
        buf.put_u8(self.msg_type);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes one frame from the front of `buf`, consuming it.
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on bad magic;
    /// [`TransportError::FrameTooLarge`] on an oversized length field.
    pub fn decode(buf: &mut BytesMut) -> Result<Option<Frame>, TransportError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u16::from_be_bytes([buf[0], buf[1]]);
        if magic != FRAME_MAGIC {
            return Err(TransportError::Malformed("bad magic"));
        }
        let len = u32::from_be_bytes([buf[3], buf[4], buf[5], buf[6]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(TransportError::FrameTooLarge {
                size: len,
                max: MAX_PAYLOAD,
            });
        }
        if buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        buf.advance(2);
        let msg_type = buf.get_u8();
        buf.advance(4);
        let payload = buf.split_to(len).freeze();
        Ok(Some(Frame { msg_type, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let f = Frame::new(7, vec![1u8, 2, 3]).unwrap();
        let mut buf = BytesMut::from(&f.encode()[..]);
        let back = Frame::decode(&mut buf).unwrap().unwrap();
        assert_eq!(back, f);
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_payload() {
        let f = Frame::new(0, Vec::new()).unwrap();
        assert_eq!(f.encoded_len(), HEADER_LEN);
        let mut buf = BytesMut::from(&f.encode()[..]);
        assert_eq!(Frame::decode(&mut buf).unwrap().unwrap(), f);
    }

    #[test]
    fn partial_input_needs_more() {
        let f = Frame::new(1, vec![9u8; 10]).unwrap();
        let encoded = f.encode();
        for cut in 0..encoded.len() {
            let mut buf = BytesMut::from(&encoded[..cut]);
            assert_eq!(Frame::decode(&mut buf).unwrap(), None, "cut={cut}");
        }
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = Frame::new(1, vec![1u8]).unwrap();
        let b = Frame::new(2, vec![2u8, 2]).unwrap();
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&a.encode());
        buf.extend_from_slice(&b.encode());
        assert_eq!(Frame::decode(&mut buf).unwrap().unwrap(), a);
        assert_eq!(Frame::decode(&mut buf).unwrap().unwrap(), b);
        assert_eq!(Frame::decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let f = Frame::new(1, vec![0u8; 4]).unwrap();
        let mut bytes = f.encode().to_vec();
        bytes[0] ^= 0xff;
        let mut buf = BytesMut::from(&bytes[..]);
        assert!(matches!(
            Frame::decode(&mut buf),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = Frame::new(1, vec![0u8; 1]).unwrap().encode().to_vec();
        // Corrupt the length field to a huge value.
        bytes[3..7].copy_from_slice(&(u32::MAX).to_be_bytes());
        let mut buf = BytesMut::from(&bytes[..]);
        assert!(matches!(
            Frame::decode(&mut buf),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn too_large_payload_rejected_at_build() {
        // Construct a Bytes of MAX_PAYLOAD + 1 zeros without allocating
        // twice: use a single vec.
        let big = vec![0u8; MAX_PAYLOAD + 1];
        assert!(matches!(
            Frame::new(0, big),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn exactly_max_payload_round_trips() {
        // The boundary itself is legal: a frame of exactly MAX_PAYLOAD
        // bytes must build, encode, and decode back intact.
        let f = Frame::new(3, vec![0xA5u8; MAX_PAYLOAD]).unwrap();
        assert_eq!(f.encoded_len(), HEADER_LEN + MAX_PAYLOAD);
        let mut buf = BytesMut::from(&f.encode()[..]);
        let back = Frame::decode(&mut buf).unwrap().unwrap();
        assert_eq!(back.msg_type, 3);
        assert_eq!(back.payload.len(), MAX_PAYLOAD);
        assert_eq!(back, f);
        assert!(buf.is_empty());
    }

    #[test]
    fn one_byte_over_max_is_rejected_by_decode_before_buffering() {
        // A length field of MAX_PAYLOAD + 1 must error from the header
        // alone — the decoder may never wait for (or allocate) the body.
        let mut header = BytesMut::new();
        header.put_u16(FRAME_MAGIC);
        header.put_u8(1);
        header.put_u32((MAX_PAYLOAD + 1) as u32);
        match Frame::decode(&mut header) {
            Err(TransportError::FrameTooLarge { size, max }) => {
                assert_eq!(size, MAX_PAYLOAD + 1);
                assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_fuzz_never_panics_or_misparses() {
        // Every strict prefix of a valid header is "need more bytes";
        // every single-byte corruption of the magic is a clean
        // Malformed error; random short garbage never panics.
        let f = Frame::new(9, vec![7u8; 32]).unwrap();
        let encoded = f.encode();
        for cut in 0..HEADER_LEN {
            let mut buf = BytesMut::from(&encoded[..cut]);
            assert_eq!(Frame::decode(&mut buf).unwrap(), None, "prefix cut={cut}");
        }
        for byte in 0..2 {
            for bit in 0..8 {
                let mut bytes = encoded.to_vec();
                bytes[byte] ^= 1 << bit;
                let mut buf = BytesMut::from(&bytes[..]);
                assert!(
                    matches!(Frame::decode(&mut buf), Err(TransportError::Malformed(_))),
                    "magic byte {byte} bit {bit} must be caught"
                );
            }
        }
        // Deterministic byte soup (SplitMix64 stream) at every length up
        // to a full header: decode must return Ok(None) or Err, and must
        // leave an un-consumed buffer only on Ok(None).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) as u8
        };
        for len in 0..=HEADER_LEN {
            for _ in 0..64 {
                let bytes: Vec<u8> = (0..len).map(|_| next()).collect();
                let mut buf = BytesMut::from(&bytes[..]);
                match Frame::decode(&mut buf) {
                    Ok(None) => assert_eq!(buf.len(), len, "no partial consumption"),
                    Ok(Some(frame)) => {
                        // Only possible when the soup spelled a valid
                        // empty frame; the header must really say so.
                        assert_eq!(len, HEADER_LEN);
                        assert!(frame.payload.is_empty());
                    }
                    Err(_) => {}
                }
            }
        }
    }
}
