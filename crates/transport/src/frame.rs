//! Wire framing: a minimal length-prefixed message format.
//!
//! Layout (big-endian):
//!
//! ```text
//! +--------+--------+----------------+-----------------+
//! | magic  | type   | payload length | payload         |
//! | u16    | u8     | u32            | length bytes    |
//! +--------+--------+----------------+-----------------+
//! ```
//!
//! The magic word catches stream desynchronization; the type byte is
//! interpreted by the protocol layer.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::TransportError;

/// Frame magic word ("PS" for private statistics).
pub const FRAME_MAGIC: u16 = 0x5053;

/// Header size in bytes.
pub const HEADER_LEN: usize = 2 + 1 + 4;

/// Maximum payload size (64 MiB) — far above any protocol message; guards
/// against corrupt length fields allocating unbounded memory.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// A framed message: a protocol-defined type byte plus opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-defined message discriminant.
    pub msg_type: u8,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

impl Frame {
    /// Builds a frame from a type byte and payload.
    ///
    /// # Errors
    /// [`TransportError::FrameTooLarge`] above [`MAX_PAYLOAD`].
    pub fn new(msg_type: u8, payload: impl Into<Bytes>) -> Result<Self, TransportError> {
        let payload = payload.into();
        if payload.len() > MAX_PAYLOAD {
            return Err(TransportError::FrameTooLarge {
                size: payload.len(),
                max: MAX_PAYLOAD,
            });
        }
        Ok(Frame { msg_type, payload })
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u16(FRAME_MAGIC);
        buf.put_u8(self.msg_type);
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decodes one frame from the front of `buf`, consuming it.
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on bad magic;
    /// [`TransportError::FrameTooLarge`] on an oversized length field.
    pub fn decode(buf: &mut BytesMut) -> Result<Option<Frame>, TransportError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u16::from_be_bytes([buf[0], buf[1]]);
        if magic != FRAME_MAGIC {
            return Err(TransportError::Malformed("bad magic"));
        }
        let len = u32::from_be_bytes([buf[3], buf[4], buf[5], buf[6]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(TransportError::FrameTooLarge {
                size: len,
                max: MAX_PAYLOAD,
            });
        }
        if buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        buf.advance(2);
        let msg_type = buf.get_u8();
        buf.advance(4);
        let payload = buf.split_to(len).freeze();
        Ok(Some(Frame { msg_type, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let f = Frame::new(7, vec![1u8, 2, 3]).unwrap();
        let mut buf = BytesMut::from(&f.encode()[..]);
        let back = Frame::decode(&mut buf).unwrap().unwrap();
        assert_eq!(back, f);
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_payload() {
        let f = Frame::new(0, Vec::new()).unwrap();
        assert_eq!(f.encoded_len(), HEADER_LEN);
        let mut buf = BytesMut::from(&f.encode()[..]);
        assert_eq!(Frame::decode(&mut buf).unwrap().unwrap(), f);
    }

    #[test]
    fn partial_input_needs_more() {
        let f = Frame::new(1, vec![9u8; 10]).unwrap();
        let encoded = f.encode();
        for cut in 0..encoded.len() {
            let mut buf = BytesMut::from(&encoded[..cut]);
            assert_eq!(Frame::decode(&mut buf).unwrap(), None, "cut={cut}");
        }
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = Frame::new(1, vec![1u8]).unwrap();
        let b = Frame::new(2, vec![2u8, 2]).unwrap();
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&a.encode());
        buf.extend_from_slice(&b.encode());
        assert_eq!(Frame::decode(&mut buf).unwrap().unwrap(), a);
        assert_eq!(Frame::decode(&mut buf).unwrap().unwrap(), b);
        assert_eq!(Frame::decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let f = Frame::new(1, vec![0u8; 4]).unwrap();
        let mut bytes = f.encode().to_vec();
        bytes[0] ^= 0xff;
        let mut buf = BytesMut::from(&bytes[..]);
        assert!(matches!(
            Frame::decode(&mut buf),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = Frame::new(1, vec![0u8; 1]).unwrap().encode().to_vec();
        // Corrupt the length field to a huge value.
        bytes[3..7].copy_from_slice(&(u32::MAX).to_be_bytes());
        let mut buf = BytesMut::from(&bytes[..]);
        assert!(matches!(
            Frame::decode(&mut buf),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn too_large_payload_rejected_at_build() {
        // Construct a Bytes of MAX_PAYLOAD + 1 zeros without allocating
        // twice: use a single vec.
        let big = vec![0u8; MAX_PAYLOAD + 1];
        assert!(matches!(
            Frame::new(0, big),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }
}
