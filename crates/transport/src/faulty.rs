//! Deterministic fault injection for transport testing.
//!
//! [`FaultyStream`] wraps any blocking byte stream and injects failures
//! — stalls, EINTR, expired deadlines, disconnects, mid-frame
//! truncation, bit corruption — on an explicit or seeded schedule keyed
//! by operation index. Because [`StreamWire`](crate::StreamWire) is
//! generic over its stream, the **exact** framing and error-handling
//! code that runs over a real `TcpStream` in production is the code
//! under test; nothing is mocked above the byte layer.
//!
//! Schedules are deterministic: an explicit schedule replays the same
//! faults at the same operations every run, and [`FaultSchedule::seeded`]
//! derives a pseudo-random schedule from a seed via SplitMix64, with no
//! ambient entropy.

use std::collections::BTreeMap;
use std::io::{Error, ErrorKind, Read, Write};
use std::time::Duration;

use crate::tcp::StreamWire;

/// One injected failure, applied to a single read or write operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Sleep for the duration, then perform the operation normally
    /// (a slow peer, not a broken one).
    Stall(Duration),
    /// Fail once with `ErrorKind::Interrupted` (EINTR). A correct
    /// blocking transport retries; a buggy one reports a bogus error.
    Interrupt,
    /// Fail with `ErrorKind::WouldBlock`, as an expired `SO_RCVTIMEO`
    /// socket deadline surfaces it.
    Timeout,
    /// Fail with `ErrorKind::ConnectionReset` — the peer is gone.
    Disconnect,
    /// Deliver (read) or accept (write) at most `keep` bytes on this
    /// operation, then hit permanent end-of-stream: EOF on reads,
    /// `BrokenPipe` on writes. With `keep` inside a frame this is
    /// mid-frame truncation.
    Truncate {
        /// Bytes still allowed through on the truncating operation.
        keep: usize,
    },
    /// Flip one bit of the bytes moved by this operation (index taken
    /// modulo the bytes actually transferred). Models line noise the
    /// framing layer must catch.
    CorruptBit {
        /// Bit index into this operation's byte window.
        bit: usize,
    },
}

/// A deterministic fault plan: faults keyed by 0-based read-operation
/// and write-operation indices. Every `read`/`write` call on the
/// wrapped stream counts as one operation, including ones that fault.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    read: BTreeMap<u64, Fault>,
    write: BTreeMap<u64, Fault>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects `fault` on the `op`-th read (0-based; `op == 0` faults
    /// the very first read, before any bytes move).
    ///
    /// If `op` is already scheduled the fault is placed on the next
    /// free read index at or after `op`, so registration order is
    /// preserved and no fault is silently dropped. (Earlier versions
    /// overwrote the existing entry, losing the first registration.)
    #[must_use]
    pub fn on_read(mut self, op: u64, fault: Fault) -> Self {
        Self::insert_cascading(&mut self.read, op, fault);
        self
    }

    /// Injects `fault` on the `op`-th write (0-based). Collision
    /// handling matches [`FaultSchedule::on_read`]: same-index
    /// registrations cascade to the next free write index instead of
    /// overwriting.
    #[must_use]
    pub fn on_write(mut self, op: u64, fault: Fault) -> Self {
        Self::insert_cascading(&mut self.write, op, fault);
        self
    }

    fn insert_cascading(map: &mut BTreeMap<u64, Fault>, mut op: u64, fault: Fault) {
        while map.contains_key(&op) {
            op = op.saturating_add(1);
        }
        map.insert(op, fault);
    }

    /// Derives a pseudo-random schedule from `seed`: over the first
    /// `ops` read operations, roughly one in four gets a fault drawn
    /// from the full taxonomy (stalls kept ≤ 2 ms so chaos tests stay
    /// fast). Same seed, same schedule — no ambient entropy.
    pub fn seeded(seed: u64, ops: u64) -> Self {
        let mut state = seed;
        let mut schedule = FaultSchedule::new();
        for op in 0..ops {
            if !splitmix64(&mut state).is_multiple_of(4) {
                continue;
            }
            let fault = match splitmix64(&mut state) % 5 {
                0 => Fault::Stall(Duration::from_millis(splitmix64(&mut state) % 3)),
                1 => Fault::Interrupt,
                2 => Fault::Timeout,
                3 => Fault::Disconnect,
                _ => Fault::CorruptBit {
                    bit: (splitmix64(&mut state) % 4096) as usize,
                },
            };
            schedule.read.insert(op, fault);
        }
        schedule
    }
}

/// A byte stream that injects the faults of a [`FaultSchedule`] around
/// an inner stream. See the module docs.
pub struct FaultyStream<S> {
    inner: S,
    schedule: FaultSchedule,
    reads: u64,
    writes: u64,
    read_dead: bool,
    write_dead: bool,
}

/// A [`StreamWire`] running over a [`FaultyStream`] — the full framing
/// stack with failures injected underneath it.
pub type FaultyWire<S> = StreamWire<FaultyStream<S>>;

impl<S> FaultyStream<S> {
    /// Wraps `inner` with `schedule`.
    pub fn new(inner: S, schedule: FaultSchedule) -> Self {
        FaultyStream {
            inner,
            schedule,
            reads: 0,
            writes: 0,
            read_dead: false,
            write_dead: false,
        }
    }

    /// Wraps `inner` and lifts it straight into a framed wire.
    pub fn wire(inner: S, schedule: FaultSchedule) -> FaultyWire<S> {
        StreamWire::new(Self::new(inner, schedule))
    }

    /// The wrapped stream (e.g. to inspect a [`ScriptedStream`]'s
    /// captured writes).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let op = self.reads;
        self.reads += 1;
        if self.read_dead {
            return Ok(0);
        }
        match self.schedule.read.remove(&op) {
            None => self.inner.read(buf),
            Some(Fault::Stall(d)) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Some(Fault::Interrupt) => Err(Error::from(ErrorKind::Interrupted)),
            Some(Fault::Timeout) => Err(Error::from(ErrorKind::WouldBlock)),
            Some(Fault::Disconnect) => Err(Error::from(ErrorKind::ConnectionReset)),
            Some(Fault::Truncate { keep }) => {
                self.read_dead = true;
                let k = keep.min(buf.len());
                if k == 0 {
                    Ok(0)
                } else {
                    self.inner.read(&mut buf[..k])
                }
            }
            Some(Fault::CorruptBit { bit }) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    let b = bit % (n * 8);
                    buf[b / 8] ^= 1 << (b % 8);
                }
                Ok(n)
            }
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let op = self.writes;
        self.writes += 1;
        if self.write_dead {
            return Err(Error::from(ErrorKind::BrokenPipe));
        }
        match self.schedule.write.remove(&op) {
            None => self.inner.write(buf),
            Some(Fault::Stall(d)) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Some(Fault::Interrupt) => Err(Error::from(ErrorKind::Interrupted)),
            Some(Fault::Timeout) => Err(Error::from(ErrorKind::WouldBlock)),
            Some(Fault::Disconnect) => Err(Error::from(ErrorKind::BrokenPipe)),
            Some(Fault::Truncate { keep }) => {
                self.write_dead = true;
                let k = keep.min(buf.len());
                if k == 0 {
                    Err(Error::from(ErrorKind::BrokenPipe))
                } else {
                    self.inner.write(&buf[..k])
                }
            }
            Some(Fault::CorruptBit { bit }) => {
                let mut copy = buf.to_vec();
                if !copy.is_empty() {
                    let b = bit % (copy.len() * 8);
                    copy[b / 8] ^= 1 << (b % 8);
                }
                self.inner.write(&copy)
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// An in-memory peer for unit tests: reads come from a prerecorded
/// script, writes are captured for inspection.
#[derive(Debug, Default)]
pub struct ScriptedStream {
    input: std::io::Cursor<Vec<u8>>,
    /// Everything the code under test wrote.
    pub written: Vec<u8>,
}

impl ScriptedStream {
    /// A stream whose reads will yield exactly `input`, then EOF.
    pub fn new(input: Vec<u8>) -> Self {
        ScriptedStream {
            input: std::io::Cursor::new(input),
            written: Vec::new(),
        }
    }
}

impl Read for ScriptedStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for ScriptedStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.written.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TransportError;
    use crate::frame::Frame;
    use crate::wire::Wire;

    fn script_of(frames: &[Frame]) -> ScriptedStream {
        let mut bytes = Vec::new();
        for f in frames {
            bytes.extend_from_slice(&f.encode());
        }
        ScriptedStream::new(bytes)
    }

    #[test]
    fn eintr_is_retried_not_fatal() {
        let f = Frame::new(5, vec![1, 2, 3]).unwrap();
        let schedule = FaultSchedule::new()
            .on_read(0, Fault::Interrupt)
            .on_read(2, Fault::Interrupt);
        let mut wire = FaultyStream::wire(script_of(&[f.clone(), f.clone()]), schedule);
        assert_eq!(wire.recv().unwrap(), f, "EINTR before the first byte");
        assert_eq!(wire.recv().unwrap(), f, "EINTR between frames");
    }

    #[test]
    fn would_block_surfaces_as_timed_out() {
        let f = Frame::new(5, vec![9]).unwrap();
        let schedule = FaultSchedule::new().on_read(0, Fault::Timeout);
        let mut wire = FaultyStream::wire(script_of(std::slice::from_ref(&f)), schedule);
        assert_eq!(wire.recv(), Err(TransportError::TimedOut));
        // The stream is still usable afterwards.
        assert_eq!(wire.recv().unwrap(), f);
    }

    #[test]
    fn reset_surfaces_as_disconnected() {
        let schedule = FaultSchedule::new().on_read(0, Fault::Disconnect);
        let mut wire = FaultyStream::wire(script_of(&[Frame::new(1, vec![]).unwrap()]), schedule);
        assert_eq!(wire.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn midframe_truncation_is_a_clean_disconnect() {
        let f = Frame::new(2, vec![7u8; 100]).unwrap();
        // Deliver only 10 bytes of a 107-byte frame, then EOF.
        let schedule = FaultSchedule::new().on_read(0, Fault::Truncate { keep: 10 });
        let mut wire = FaultyStream::wire(script_of(&[f]), schedule);
        assert_eq!(wire.recv(), Err(TransportError::Disconnected));
    }

    #[test]
    fn header_corruption_is_malformed_not_a_hang() {
        let f = Frame::new(2, vec![7u8; 16]).unwrap();
        // Bit 3 lands in the magic word.
        let schedule = FaultSchedule::new().on_read(0, Fault::CorruptBit { bit: 3 });
        let mut wire = FaultyStream::wire(script_of(&[f]), schedule);
        assert_eq!(wire.recv(), Err(TransportError::Malformed("bad magic")));
    }

    #[test]
    fn payload_corruption_changes_bytes() {
        let f = Frame::new(2, vec![0u8; 16]).unwrap();
        // Bit 100 lands in the payload (header is 7 bytes = 56 bits).
        let schedule = FaultSchedule::new().on_read(0, Fault::CorruptBit { bit: 100 });
        let mut wire = FaultyStream::wire(script_of(std::slice::from_ref(&f)), schedule);
        let got = wire.recv().unwrap();
        assert_eq!(got.msg_type, f.msg_type);
        assert_ne!(got.payload, f.payload, "payload bit was flipped");
    }

    #[test]
    fn stall_delays_but_delivers() {
        let f = Frame::new(3, vec![1]).unwrap();
        let schedule = FaultSchedule::new().on_read(0, Fault::Stall(Duration::from_millis(30)));
        let mut wire = FaultyStream::wire(script_of(std::slice::from_ref(&f)), schedule);
        let start = std::time::Instant::now();
        assert_eq!(wire.recv().unwrap(), f);
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn write_faults_apply() {
        let f = Frame::new(4, vec![1, 2]).unwrap();
        let schedule = FaultSchedule::new().on_write(0, Fault::Disconnect);
        let mut wire = FaultyStream::wire(ScriptedStream::default(), schedule);
        assert_eq!(wire.send(f.clone()), Err(TransportError::Disconnected));

        // Truncated write: some bytes accepted, then the pipe breaks.
        let schedule = FaultSchedule::new().on_write(0, Fault::Truncate { keep: 3 });
        let mut wire = FaultyStream::wire(ScriptedStream::default(), schedule);
        assert_eq!(wire.send(f), Err(TransportError::Disconnected));
        assert_eq!(wire.get_ref().get_ref().written.len(), 3);
    }

    #[test]
    fn fault_at_operation_zero_fires_before_any_bytes() {
        // Regression: op index 0 must hit the very first operation on
        // both the read and write sides — no off-by-one, no warm-up op.
        let f = Frame::new(1, vec![4]).unwrap();
        let schedule = FaultSchedule::new().on_read(0, Fault::Disconnect);
        let mut wire = FaultyStream::wire(script_of(std::slice::from_ref(&f)), schedule);
        assert_eq!(wire.recv(), Err(TransportError::Disconnected));

        let schedule = FaultSchedule::new().on_write(0, Fault::Disconnect);
        let mut wire = FaultyStream::wire(ScriptedStream::default(), schedule);
        assert_eq!(wire.send(f), Err(TransportError::Disconnected));
        assert!(
            wire.get_ref().get_ref().written.is_empty(),
            "fault at write op 0 must precede any accepted bytes"
        );
    }

    #[test]
    fn same_op_registrations_cascade_in_order() {
        // Regression: two faults on one op index used to silently drop
        // the first. Pinned resolution order: the collision cascades to
        // the next free index, preserving registration order.
        let colliding = FaultSchedule::new()
            .on_read(1, Fault::Interrupt)
            .on_read(1, Fault::Timeout);
        let explicit = FaultSchedule::new()
            .on_read(1, Fault::Interrupt)
            .on_read(2, Fault::Timeout);
        assert_eq!(colliding, explicit);

        // Behavioral check: both faults fire, in registration order.
        // Op 0 EINTRs (retried in place), op 1 — the cascaded slot —
        // times out, and the frame arrives cleanly on the next recv.
        let both_at_zero = FaultSchedule::new()
            .on_read(0, Fault::Interrupt)
            .on_read(0, Fault::Timeout);
        let f = Frame::new(6, vec![1, 2, 3]).unwrap();
        let mut wire = FaultyStream::wire(script_of(std::slice::from_ref(&f)), both_at_zero);
        assert_eq!(wire.recv(), Err(TransportError::TimedOut));
        assert_eq!(wire.recv().unwrap(), f);
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        assert_eq!(FaultSchedule::seeded(99, 64), FaultSchedule::seeded(99, 64));
        assert_ne!(FaultSchedule::seeded(99, 64), FaultSchedule::seeded(7, 64));
    }

    #[test]
    fn chaos_never_wedges_and_errors_stay_in_taxonomy() {
        // Whatever a seeded schedule throws at the wire, recv either
        // returns a frame or one of the defined errors — and terminates.
        let frames: Vec<Frame> = (0..8)
            .map(|i| Frame::new(i, vec![i; 32]).unwrap())
            .collect();
        for seed in 0..32u64 {
            let mut wire = FaultyStream::wire(script_of(&frames), FaultSchedule::seeded(seed, 128));
            loop {
                match wire.recv() {
                    Ok(_) => continue,
                    // A timeout is transient: the next recv may succeed.
                    Err(TransportError::TimedOut) => continue,
                    // Desync or peer-gone: the session is over. Break —
                    // a desynchronized stream stays in error forever.
                    Err(
                        TransportError::Disconnected
                        | TransportError::Malformed(_)
                        | TransportError::FrameTooLarge { .. },
                    ) => break,
                    Err(e) => panic!("seed {seed}: unexpected error {e}"),
                }
            }
        }
    }
}
