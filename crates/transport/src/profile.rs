//! Link profiles: analytic models of the paper's two communication media.
//!
//! The original experiments ran on (a) a high-performance cluster whose
//! nodes were joined by a 64 Gbps switch (short distance, §3.1 Fig. 2) and
//! (b) a 56 Kbps dial-up modem between Chicago and Hoboken (long distance,
//! Fig. 3). Neither testbed is reproducible, so communication is
//! **simulated**: a [`LinkProfile`] computes the virtual wall-clock cost of
//! moving bytes — `per-message latency + bytes · 8 / bandwidth` — which
//! preserves exactly the property the paper investigates (how the
//! communication component scales against the computation components).

use std::time::Duration;

use crate::error::TransportError;

/// An analytic point-to-point link model.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkProfile {
    /// Human-readable name used in reports ("56Kbps dial-up").
    pub name: &'static str,
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation latency added to every message.
    pub latency: Duration,
    /// Fixed framing/protocol overhead added to every message, in bytes
    /// (models TCP/IP + PPP or Ethernet headers).
    pub per_message_overhead_bytes: usize,
}

impl LinkProfile {
    /// The paper's short-distance medium: cluster nodes on a
    /// high-performance switch ("64Gbps bandwidth switch", §3.3).
    pub fn cluster_switch() -> Self {
        LinkProfile {
            name: "64Gbps cluster switch",
            bandwidth_bps: 64e9,
            latency: Duration::from_micros(5),
            per_message_overhead_bytes: 66,
        }
    }

    /// A commodity gigabit LAN ("high-performance gigabit network
    /// switch", §3.1) — the medium of Figs. 2, 4, 5, 7.
    pub fn gigabit_lan() -> Self {
        LinkProfile {
            name: "gigabit LAN",
            bandwidth_bps: 1e9,
            latency: Duration::from_micros(100),
            per_message_overhead_bytes: 66,
        }
    }

    /// The paper's long-distance medium: a 56 Kbps dial-up modem between
    /// Chicago, IL and Hoboken, NJ (Figs. 3, 6). Latency reflects a
    /// cross-country PSTN path.
    pub fn modem_56k() -> Self {
        LinkProfile {
            name: "56Kbps dial-up",
            bandwidth_bps: 56e3,
            latency: Duration::from_millis(150),
            per_message_overhead_bytes: 48,
        }
    }

    /// A link with custom parameters.
    ///
    /// # Errors
    /// [`TransportError::InvalidProfile`] for non-positive bandwidth.
    pub fn custom(
        name: &'static str,
        bandwidth_bps: f64,
        latency: Duration,
        per_message_overhead_bytes: usize,
    ) -> Result<Self, TransportError> {
        if bandwidth_bps <= 0.0 || bandwidth_bps.is_nan() || !bandwidth_bps.is_finite() {
            return Err(TransportError::InvalidProfile(
                "bandwidth must be positive and finite",
            ));
        }
        Ok(LinkProfile {
            name,
            bandwidth_bps,
            latency,
            per_message_overhead_bytes,
        })
    }

    /// Pure serialization (transmission) time for `bytes` payload bytes,
    /// excluding latency and per-message overhead.
    pub fn serialization_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Total virtual time to deliver one message of `payload_bytes`:
    /// latency + (payload + overhead) serialization.
    pub fn message_time(&self, payload_bytes: usize) -> Duration {
        self.latency + self.serialization_time(payload_bytes + self.per_message_overhead_bytes)
    }

    /// Total virtual time for a sequence of messages of the given payload
    /// sizes, sent back-to-back (latencies are *not* overlapped: the
    /// sequential protocol waits on each).
    pub fn sequence_time(&self, payload_sizes: &[usize]) -> Duration {
        payload_sizes.iter().map(|&b| self.message_time(b)).sum()
    }

    /// Virtual time for a bulk transfer of `total_bytes` split into
    /// `messages` messages, with latency counted once (streaming transfer
    /// over an established connection — the model for one direction of a
    /// pipelined batch flow).
    pub fn stream_time(&self, total_bytes: usize, messages: usize) -> Duration {
        self.latency
            + self.serialization_time(total_bytes + messages * self.per_message_overhead_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_sane() {
        assert!(
            LinkProfile::cluster_switch().bandwidth_bps > LinkProfile::gigabit_lan().bandwidth_bps
        );
        assert!(LinkProfile::gigabit_lan().bandwidth_bps > LinkProfile::modem_56k().bandwidth_bps);
        assert!(LinkProfile::modem_56k().latency > LinkProfile::gigabit_lan().latency);
    }

    #[test]
    fn custom_validation() {
        assert!(LinkProfile::custom("x", 0.0, Duration::ZERO, 0).is_err());
        assert!(LinkProfile::custom("x", -5.0, Duration::ZERO, 0).is_err());
        assert!(LinkProfile::custom("x", f64::INFINITY, Duration::ZERO, 0).is_err());
        assert!(LinkProfile::custom("x", 9600.0, Duration::ZERO, 0).is_ok());
    }

    #[test]
    fn serialization_time_is_linear() {
        let p = LinkProfile::modem_56k();
        let t1 = p.serialization_time(7000); // 56000 bits => 1 s at 56 kbps
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-9);
        let t2 = p.serialization_time(14_000);
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn message_time_includes_latency_and_overhead() {
        let p = LinkProfile::custom("t", 8000.0, Duration::from_millis(100), 10).unwrap();
        // 90 payload + 10 overhead = 100 bytes = 800 bits = 0.1 s, + 0.1 s latency.
        let t = p.message_time(90);
        assert!((t.as_secs_f64() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_modem_transfer() {
        // 100,000 Paillier ciphertexts of 128 bytes over 56 Kbps:
        // ≈ 12.8 MB ≈ 1830 s of pure serialization — matching the paper's
        // observation that modem communication takes tens of minutes.
        let p = LinkProfile::modem_56k();
        let t = p.stream_time(100_000 * 128, 100_000 / 100);
        let minutes = t.as_secs_f64() / 60.0;
        assert!(
            minutes > 25.0 && minutes < 45.0,
            "modem minutes = {minutes}"
        );
    }

    #[test]
    fn sequence_vs_stream_latency_counting() {
        let p = LinkProfile::modem_56k();
        let seq = p.sequence_time(&[100, 100, 100]);
        let stream = p.stream_time(300, 3);
        // Sequence pays 3 latencies; stream pays 1.
        assert!(seq > stream);
        let diff = seq - stream;
        assert!((diff.as_secs_f64() - 2.0 * p.latency.as_secs_f64()).abs() < 1e-6);
    }
}
