//! Error type for transports.

use std::fmt;

/// Errors surfaced by wires, codecs, and link models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint hung up (channel closed / endpoint dropped,
    /// EOF, connection reset).
    Disconnected,
    /// A read or write deadline expired before the operation completed
    /// (socket timeout or session deadline). Distinct from
    /// [`TransportError::Disconnected`]: the peer may still be alive,
    /// merely slow — callers decide whether to retry or evict.
    TimedOut,
    /// Receive called with no queued message on a non-blocking wire.
    Empty,
    /// A frame exceeded the maximum encodable size.
    FrameTooLarge {
        /// Attempted frame size.
        size: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// A frame failed structural validation on decode.
    Malformed(&'static str),
    /// A link-model parameter was invalid (e.g. zero bandwidth).
    InvalidProfile(&'static str),
    /// An OS-level socket error (TCP transport only).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disconnected => write!(f, "peer disconnected"),
            Self::TimedOut => write!(f, "operation timed out"),
            Self::Empty => write!(f, "no message queued"),
            Self::FrameTooLarge { size, max } => {
                write!(f, "frame of {size} bytes exceeds maximum {max}")
            }
            Self::Malformed(why) => write!(f, "malformed frame: {why}"),
            Self::InvalidProfile(why) => write!(f, "invalid link profile: {why}"),
            Self::Io(why) => write!(f, "socket error: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            TransportError::Disconnected.to_string(),
            "peer disconnected"
        );
        assert_eq!(TransportError::TimedOut.to_string(), "operation timed out");
        assert!(TransportError::FrameTooLarge { size: 10, max: 5 }
            .to_string()
            .contains("10"));
    }
}
