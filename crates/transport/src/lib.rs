//! # pps-transport
//!
//! Network substrate for the privacy-preserving statistics workspace.
//!
//! The paper's experiments ran over two physical media we cannot
//! reproduce — a 2004 HPC cluster switch and a Chicago↔Hoboken 56 Kbps
//! dial-up modem — so communication is **simulated**. This crate provides:
//!
//! * [`LinkProfile`] — analytic models of the paper's media (plus custom
//!   ones): message delivery time = latency + bytes·8/bandwidth;
//! * [`Frame`] — a minimal length-prefixed wire format with byte-exact
//!   accounting, so the communication component of every figure reflects
//!   real serialized protocol bytes;
//! * [`Wire`] with three implementations: [`SimLink`] (in-memory,
//!   virtual clock, sequential orchestration), [`ChannelWire`]
//!   (crossbeam channels, real threads), and [`TcpWire`] (framing over a
//!   real socket, with read/write deadlines), plus [`NonBlockingWire`] —
//!   the same framing over a nonblocking socket for readiness-polled
//!   event loops (partial-frame reassembly, buffered writes);
//! * [`pipeline_makespan`] — flow-shop makespan model for the §3.2
//!   batching/pipelining experiment;
//! * fault tolerance: [`RetryPolicy`] (exponential backoff with
//!   deterministic jitter for reconnect/re-query) and the
//!   [`FaultyStream`] test wrapper that injects stalls, EINTR,
//!   timeouts, disconnects, truncation, and bit corruption underneath
//!   the production framing code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod faulty;
mod frame;
mod nonblocking;
mod obs;
mod pipeline;
mod profile;
mod retry;
mod tcp;
mod wire;

pub use error::TransportError;
pub use faulty::{Fault, FaultSchedule, FaultyStream, FaultyWire, ScriptedStream};
pub use frame::{Frame, FRAME_MAGIC, HEADER_LEN, MAX_PAYLOAD};
pub use nonblocking::NonBlockingWire;
pub use obs::{TimedWire, WireMetrics};
pub use pipeline::{pipeline_makespan, uniform_pipeline_makespan};
pub use profile::LinkProfile;
pub use retry::{RetryPolicy, RetryStats};
pub use tcp::{StreamWire, TcpWire};
pub use wire::{ChannelWire, SimLink, TrafficStats, Wire};
