//! # pps-transport
//!
//! Network substrate for the privacy-preserving statistics workspace.
//!
//! The paper's experiments ran over two physical media we cannot
//! reproduce — a 2004 HPC cluster switch and a Chicago↔Hoboken 56 Kbps
//! dial-up modem — so communication is **simulated**. This crate provides:
//!
//! * [`LinkProfile`] — analytic models of the paper's media (plus custom
//!   ones): message delivery time = latency + bytes·8/bandwidth;
//! * [`Frame`] — a minimal length-prefixed wire format with byte-exact
//!   accounting, so the communication component of every figure reflects
//!   real serialized protocol bytes;
//! * [`Wire`] with two implementations: [`SimLink`] (in-memory, virtual
//!   clock, sequential orchestration) and [`ChannelWire`] (crossbeam
//!   channels, real threads);
//! * [`pipeline_makespan`] — flow-shop makespan model for the §3.2
//!   batching/pipelining experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod frame;
mod pipeline;
mod profile;
mod tcp;
mod wire;

pub use error::TransportError;
pub use frame::{Frame, FRAME_MAGIC, HEADER_LEN, MAX_PAYLOAD};
pub use pipeline::{pipeline_makespan, uniform_pipeline_makespan};
pub use profile::LinkProfile;
pub use tcp::TcpWire;
pub use wire::{ChannelWire, SimLink, TrafficStats, Wire};
