//! Nonblocking framing for readiness-polled runtimes.
//!
//! [`StreamWire`](crate::StreamWire) assumes a *blocking* stream: its
//! `recv` parks the calling thread until a whole frame arrives, which is
//! exactly right for thread-per-connection runtimes and exactly wrong
//! for an event loop multiplexing thousands of sockets on a handful of
//! threads. [`NonBlockingWire`] is the event-loop counterpart:
//!
//! * the socket is switched to nonblocking mode at construction;
//! * [`NonBlockingWire::poll_recv`] drains whatever bytes the kernel has
//!   ready into the same incremental [`Frame::decode`] reassembly buffer
//!   the blocking wire uses (partial frames persist across polls) and
//!   returns `Ok(None)` instead of blocking when no complete frame is
//!   available yet;
//! * sends are split into [`NonBlockingWire::queue`] (encode into a
//!   pending-write buffer, never touches the socket) and
//!   [`NonBlockingWire::flush`] (write as much as the socket accepts,
//!   reporting whether the buffer drained).
//!
//! Error classification is shared with the blocking wire — EOF/reset →
//! [`TransportError::Disconnected`], everything else with its OS message
//! — except that `WouldBlock` is *not* an error here: it is the normal
//! "try again next tick" signal and maps to `Ok(None)` / `Ok(false)`.
//! `Interrupted` (EINTR) is retried, never surfaced, as everywhere else
//! in this crate.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

use bytes::BytesMut;

use crate::error::TransportError;
use crate::frame::Frame;
use crate::obs::WireMetrics;
use crate::tcp::classify_io;
use crate::wire::TrafficStats;

/// Most bytes one [`NonBlockingWire::poll_recv`] call will read before
/// yielding, so a firehose peer cannot monopolize the event loop tick.
/// A complete frame already in the buffer is still returned.
const READ_BUDGET_PER_POLL: usize = 1 << 20;

/// A framed, nonblocking wire over a [`TcpStream`], for readiness-polled
/// event loops: `poll_recv` never blocks, writes are buffered and
/// flushed incrementally.
pub struct NonBlockingWire {
    stream: TcpStream,
    /// Receive reassembly buffer (partial frames persist across polls).
    rbuf: BytesMut,
    /// Encoded-but-unwritten bytes awaiting socket writability.
    wbuf: BytesMut,
    stats: TrafficStats,
    metrics: Option<WireMetrics>,
    /// Distributed trace context attached to this connection — see
    /// [`StreamWire::set_trace`](crate::StreamWire::set_trace).
    trace: Option<pps_obs::TraceContext>,
}

impl std::fmt::Debug for NonBlockingWire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NonBlockingWire")
            .field("stream", &self.stream)
            .field("buffered_read", &self.rbuf.len())
            .field("pending_write", &self.wbuf.len())
            .finish()
    }
}

impl NonBlockingWire {
    /// Wraps an accepted stream, switching it to nonblocking mode and
    /// enabling `TCP_NODELAY` (replies are latency-sensitive and the
    /// event loop already batches writes).
    ///
    /// # Errors
    /// [`TransportError::Io`] when the socket options cannot be set.
    pub fn new(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nonblocking(true).map_err(|e| classify_io(&e))?;
        stream.set_nodelay(true).map_err(|e| classify_io(&e))?;
        Ok(NonBlockingWire {
            stream,
            rbuf: BytesMut::new(),
            wbuf: BytesMut::new(),
            stats: TrafficStats::default(),
            metrics: None,
            trace: None,
        })
    }

    /// Attaches shared [`WireMetrics`] counters (see
    /// [`StreamWire::set_metrics`](crate::StreamWire::set_metrics)).
    pub fn set_metrics(&mut self, metrics: WireMetrics) {
        self.metrics = Some(metrics);
    }

    /// Attaches the distributed trace context this connection serves
    /// (see [`StreamWire::set_trace`](crate::StreamWire::set_trace)).
    pub fn set_trace(&mut self, trace: pps_obs::TraceContext) {
        self.trace = Some(trace);
    }

    /// The trace context attached with [`NonBlockingWire::set_trace`].
    pub fn trace(&self) -> Option<pps_obs::TraceContext> {
        self.trace
    }

    /// Shared access to the underlying stream.
    pub fn get_ref(&self) -> &TcpStream {
        &self.stream
    }

    /// Decodes the next complete frame, reading whatever bytes the
    /// kernel has ready (up to an internal per-call budget). Returns
    /// `Ok(None)` when no complete frame is available yet — poll again
    /// after the next readiness tick.
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] on EOF or a peer-gone error,
    /// [`TransportError::Malformed`] on framing violations,
    /// [`TransportError::Io`] otherwise. `WouldBlock` is not an error.
    pub fn poll_recv(&mut self) -> Result<Option<Frame>, TransportError> {
        let mut read = 0usize;
        loop {
            if let Some(frame) = Frame::decode(&mut self.rbuf)? {
                self.stats.messages_received += 1;
                self.stats.payload_bytes_received += frame.payload.len();
                self.stats.wire_bytes_received += frame.encoded_len();
                if let Some(metrics) = &self.metrics {
                    metrics.on_recv(&frame);
                }
                return Ok(Some(frame));
            }
            if read >= READ_BUDGET_PER_POLL {
                return Ok(None); // mid-frame; resume next tick
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(TransportError::Disconnected),
                Ok(n) => {
                    read += n;
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(self.note_error(classify_io(&e))),
            }
        }
    }

    /// Encodes `frame` into the pending-write buffer. Nothing touches
    /// the socket until [`NonBlockingWire::flush`].
    pub fn queue(&mut self, frame: &Frame) {
        self.wbuf.extend_from_slice(&frame.encode());
        self.stats.messages_sent += 1;
        self.stats.payload_bytes_sent += frame.payload.len();
        self.stats.wire_bytes_sent += frame.encoded_len();
        if let Some(metrics) = &self.metrics {
            metrics.on_send(frame);
        }
    }

    /// Writes as much of the pending buffer as the socket accepts.
    /// Returns `Ok(true)` when the buffer fully drained, `Ok(false)`
    /// when the socket stopped accepting bytes (try again next tick).
    ///
    /// # Errors
    /// [`TransportError::Disconnected`] / [`TransportError::Io`] on
    /// write failures (`WouldBlock` is not an error).
    pub fn flush(&mut self) -> Result<bool, TransportError> {
        while !self.wbuf.is_empty() {
            match self.stream.write(&self.wbuf) {
                Ok(0) => return Err(self.note_error(TransportError::Disconnected)),
                Ok(n) => {
                    let _ = self.wbuf.split_to(n);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(self.note_error(classify_io(&e))),
            }
        }
        Ok(true)
    }

    /// Whether encoded bytes are still waiting for socket writability.
    pub fn has_pending_write(&self) -> bool {
        !self.wbuf.is_empty()
    }

    /// Bytes currently queued for write.
    pub fn pending_write_len(&self) -> usize {
        self.wbuf.len()
    }

    /// Per-connection traffic totals.
    pub fn stats(&self) -> TrafficStats {
        self.stats.clone()
    }

    fn note_error(&self, error: TransportError) -> TransportError {
        if let Some(metrics) = &self.metrics {
            metrics.on_error(&error);
        }
        error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn raw_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    /// Polls until a frame arrives or the deadline passes.
    fn poll_until(wire: &mut NonBlockingWire, timeout: Duration) -> Frame {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(f) = wire.poll_recv().unwrap() {
                return f;
            }
            assert!(std::time::Instant::now() < deadline, "no frame in time");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn empty_socket_polls_none_not_error() {
        let (_client, server) = raw_pair();
        let mut wire = NonBlockingWire::new(server).unwrap();
        assert_eq!(wire.poll_recv().unwrap(), None);
        assert_eq!(wire.poll_recv().unwrap(), None, "polling is idempotent");
    }

    #[test]
    fn partial_frame_reassembles_across_polls() {
        let (mut client, server) = raw_pair();
        let mut wire = NonBlockingWire::new(server).unwrap();
        let frame = Frame::new(9, vec![7u8; 64]).unwrap();
        let encoded = frame.encode();
        client.write_all(&encoded[..10]).unwrap();
        client.flush().unwrap();
        // Give the kernel a moment to deliver, then poll: header bytes
        // alone must not produce a frame, and must not be lost.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(wire.poll_recv().unwrap(), None);
        client.write_all(&encoded[10..]).unwrap();
        assert_eq!(poll_until(&mut wire, Duration::from_secs(2)), frame);
    }

    #[test]
    fn back_to_back_frames_come_out_one_per_poll() {
        let (mut client, server) = raw_pair();
        let mut wire = NonBlockingWire::new(server).unwrap();
        let mut blob = Vec::new();
        for i in 0..5u8 {
            blob.extend_from_slice(&Frame::new(i, vec![i; i as usize]).unwrap().encode());
        }
        client.write_all(&blob).unwrap();
        for i in 0..5u8 {
            let f = poll_until(&mut wire, Duration::from_secs(2));
            assert_eq!(f.msg_type, i);
            assert_eq!(f.payload.len(), i as usize);
        }
        assert_eq!(wire.poll_recv().unwrap(), None);
        assert_eq!(wire.stats().messages_received, 5);
    }

    #[test]
    fn disconnect_surfaces_after_buffered_frames() {
        let (mut client, server) = raw_pair();
        let mut wire = NonBlockingWire::new(server).unwrap();
        client
            .write_all(&Frame::new(3, vec![1, 2]).unwrap().encode())
            .unwrap();
        drop(client);
        assert_eq!(
            poll_until(&mut wire, Duration::from_secs(2)).msg_type,
            3,
            "buffered frame still delivered"
        );
        // EOF may race the last poll; keep polling briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match wire.poll_recv() {
                Err(TransportError::Disconnected) => break,
                Ok(None) => {
                    assert!(std::time::Instant::now() < deadline);
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => panic!("expected disconnect, got {other:?}"),
            }
        }
    }

    #[test]
    fn queue_buffers_and_flush_delivers() {
        let (client, server) = raw_pair();
        let mut wire = NonBlockingWire::new(server).unwrap();
        let frame = Frame::new(4, vec![9u8; 300]).unwrap();
        wire.queue(&frame);
        assert!(wire.has_pending_write());
        assert_eq!(wire.pending_write_len(), frame.encoded_len());
        assert!(wire.flush().unwrap());
        assert!(!wire.has_pending_write());
        let mut peer = crate::StreamWire::new(client);
        use crate::wire::Wire as _;
        assert_eq!(peer.recv().unwrap(), frame);
        assert_eq!(wire.stats().messages_sent, 1);
    }

    #[test]
    fn flush_survives_backpressure() {
        // Fill the socket until WouldBlock, then drain from the peer and
        // verify every byte arrives in order.
        let (client, server) = raw_pair();
        let mut wire = NonBlockingWire::new(server).unwrap();
        let frame = Frame::new(1, vec![0xAB; 1 << 20]).unwrap(); // 1 MiB
        wire.queue(&frame);
        // First flush may or may not complete depending on kernel buffer
        // sizes; keep flushing while a reader drains.
        let reader = std::thread::spawn(move || {
            let mut peer = crate::StreamWire::new(client);
            use crate::wire::Wire as _;
            peer.recv().unwrap()
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !wire.flush().unwrap() {
            assert!(std::time::Instant::now() < deadline, "flush never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(reader.join().unwrap(), frame);
    }
}
