//! Discrete-event makespan model for staged batch pipelines — the
//! analytic machinery behind the paper's §3.2 batching experiment.
//!
//! With batching, three activities overlap: the client encrypts batch
//! `i+1` while batch `i` is on the wire and the server is folding batch
//! `i-1` into its partial product. The paper notes that "in order to
//! achieve maximum parallelization, ideally all three activities ... will
//! require approximately the same amount of time."
//!
//! [`pipeline_makespan`] computes the completion time of a k-item,
//! S-stage pipeline with the classic flow-shop recurrence
//!
//! ```text
//! T[s][i] = max(T[s-1][i], T[s][i-1]) + t[s][i]
//! ```
//!
//! which is exact for pipelines where each stage processes items in order
//! and holds at most one item at a time (true here: one CPU per party and
//! one serial link).

use std::time::Duration;

/// Completion time of the last item through the last stage.
///
/// `stage_times[s][i]` is the service time of item `i` at stage `s`.
/// All stages must have the same item count. Empty input gives zero.
///
/// # Panics
/// Panics if stages have differing item counts (a caller bug).
pub fn pipeline_makespan(stage_times: &[Vec<Duration>]) -> Duration {
    let Some(first) = stage_times.first() else {
        return Duration::ZERO;
    };
    let items = first.len();
    assert!(
        stage_times.iter().all(|s| s.len() == items),
        "all pipeline stages must have the same item count"
    );
    if items == 0 {
        return Duration::ZERO;
    }
    // prev[i]: completion time of item i at the previous stage.
    let mut prev = vec![Duration::ZERO; items];
    for stage in stage_times {
        let mut last_here = Duration::ZERO;
        for (i, &t) in stage.iter().enumerate() {
            let start = prev[i].max(last_here);
            last_here = start + t;
            prev[i] = last_here;
        }
    }
    prev[items - 1]
}

/// Convenience for uniform pipelines: `k` identical items through stages
/// with per-item times `per_item[s]`.
pub fn uniform_pipeline_makespan(per_item: &[Duration], items: usize) -> Duration {
    let stages: Vec<Vec<Duration>> = per_item.iter().map(|&t| vec![t; items]).collect();
    pipeline_makespan(&stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(pipeline_makespan(&[]), Duration::ZERO);
        assert_eq!(pipeline_makespan(&[vec![], vec![]]), Duration::ZERO);
        assert_eq!(uniform_pipeline_makespan(&[ms(5)], 0), Duration::ZERO);
    }

    #[test]
    fn single_stage_sums() {
        let t = pipeline_makespan(&[vec![ms(1), ms(2), ms(3)]]);
        assert_eq!(t, ms(6));
    }

    #[test]
    fn single_item_sums_stages() {
        let t = pipeline_makespan(&[vec![ms(1)], vec![ms(2)], vec![ms(3)]]);
        assert_eq!(t, ms(6));
    }

    #[test]
    fn balanced_pipeline_formula() {
        // k items, S stages, all times t: makespan = (k + S - 1) · t.
        for (k, s) in [(10usize, 3usize), (100, 3), (5, 5)] {
            let t = uniform_pipeline_makespan(&vec![ms(7); s], k);
            assert_eq!(t, ms(7 * (k as u64 + s as u64 - 1)), "k={k} s={s}");
        }
    }

    #[test]
    fn bottleneck_stage_dominates() {
        // Stage 2 is 10x slower: makespan ≈ k · t_bottleneck for large k.
        let k = 1000;
        let t = uniform_pipeline_makespan(&[ms(1), ms(10), ms(1)], k);
        let bottleneck_total = ms(10 * k as u64);
        assert!(t >= bottleneck_total);
        assert!(
            t <= bottleneck_total + ms(22),
            "only pipeline fill/drain on top"
        );
    }

    #[test]
    fn pipelining_beats_sequential() {
        // Sequential = sum over all items of all stages; pipelined is
        // strictly less when k > 1 and stages overlap.
        let stages = [vec![ms(3); 50], vec![ms(2); 50], vec![ms(4); 50]];
        let pipelined = pipeline_makespan(&stages);
        let sequential = ms((3 + 2 + 4) * 50);
        assert!(pipelined < sequential);
        // And no better than the bottleneck bound.
        assert!(pipelined >= ms(4 * 50));
    }

    #[test]
    fn irregular_times() {
        // Hand-computed 2-stage, 2-item example.
        // T[0] = [2, 2+1=3]; T[1] = [2+5=7, max(3,7)+1=8].
        let t = pipeline_makespan(&[vec![ms(2), ms(1)], vec![ms(5), ms(1)]]);
        assert_eq!(t, ms(8));
    }

    #[test]
    #[should_panic(expected = "same item count")]
    fn mismatched_counts_panic() {
        let _ = pipeline_makespan(&[vec![ms(1)], vec![ms(1), ms(2)]]);
    }
}
