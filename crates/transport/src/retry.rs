//! Client-side retry policy: exponential backoff with deterministic
//! jitter.
//!
//! The paper's long-distance experiments (§3.1, the Chicago↔Hoboken
//! 56 Kbps modem link) are exactly the regime where connections are
//! refused or dropped mid-query. A fresh selected-sum query is
//! idempotent — no server state outlives a session, and a re-issued
//! query re-encrypts the index vector under fresh randomness — so the
//! correct client reaction to a transient transport failure is to back
//! off and try again.
//!
//! Jitter is drawn from the **caller's RNG**, not a global clock or
//! thread-local entropy, so a seeded test reproduces the exact backoff
//! sequence ([`RetryPolicy::delays`]).

use std::time::Duration;

use rand::RngCore;

/// Exponential-backoff retry policy.
///
/// Attempt `k` (0-based) that fails sleeps
/// `d_k = min(base_delay · 2^k, max_delay)` scaled by a jitter factor in
/// `[½, 1]` drawn from the caller's RNG, then retries — up to
/// `max_attempts` total attempts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_delay: Duration,
    /// Backoff growth cap.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// 4 attempts, 100 ms base, 2 s cap — worst case ≈ 3.5 s of waiting.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeps).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The backoff slept after failed attempt `attempt` (0-based):
    /// exponential growth, capped, jittered into `[d/2, d]` by `rng`.
    pub fn delay_for(&self, attempt: u32, rng: &mut dyn RngCore) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let nanos = exp.as_nanos().min(u128::from(u64::MAX)) as u64;
        let half = nanos / 2;
        // Uniform jitter over the upper half of the window; `% (half+1)`
        // is deterministic given the RNG stream.
        let jitter = if half == 0 {
            0
        } else {
            rng.next_u64() % (half + 1)
        };
        Duration::from_nanos(half + jitter)
    }

    /// The complete backoff schedule this policy would sleep if every
    /// attempt failed: `max_attempts − 1` delays, drawn from `rng` in
    /// order. Reseeding the RNG reproduces the schedule exactly.
    pub fn delays(&self, rng: &mut dyn RngCore) -> Vec<Duration> {
        (0..self.max_attempts.saturating_sub(1))
            .map(|k| self.delay_for(k, rng))
            .collect()
    }
}

/// What a retry loop actually did: attempt count and the exact backoff
/// sequence slept between attempts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts made (≥ 1 on success; `max_attempts` on final failure).
    pub attempts: u32,
    /// Backoffs slept, in order (`attempts − 1` entries when every
    /// failure was followed by a retry).
    pub delays: Vec<Duration>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(400),
        }
    }

    #[test]
    fn schedule_is_deterministic_under_a_seed() {
        let a = policy().delays(&mut StdRng::seed_from_u64(7));
        let b = policy().delays(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let c = policy().delays(&mut StdRng::seed_from_u64(8));
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = policy();
        let mut rng = StdRng::seed_from_u64(1);
        for (k, expected_window) in [(0u32, 100u64), (1, 200), (2, 400), (3, 400), (30, 400)] {
            let d = p.delay_for(k, &mut rng);
            let window = Duration::from_millis(expected_window);
            assert!(
                d >= window / 2 && d <= window,
                "attempt {k}: {d:?} outside [{:?}, {window:?}]",
                window / 2
            );
        }
    }

    #[test]
    fn none_policy_never_sleeps() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert!(p.delays(&mut StdRng::seed_from_u64(0)).is_empty());
    }

    #[test]
    fn zero_base_delay_is_fine() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        };
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(p.delay_for(0, &mut rng), Duration::ZERO);
    }
}
