//! Transport-layer observability: registry-backed wire counters and a
//! blocked-time wrapper.
//!
//! Two complementary views of the same traffic:
//!
//! * [`WireMetrics`] — process-wide *counters* (frames/bytes in both
//!   directions, timeouts) attached to a [`StreamWire`](crate::StreamWire)
//!   via [`StreamWire::set_metrics`](crate::StreamWire::set_metrics) and
//!   shared through a [`Registry`], so every connection a server accepts
//!   feeds the same `/metrics` series.
//! * [`TimedWire`] — a per-connection *stopwatch* that accumulates the
//!   time the caller spends blocked inside `send`/`recv`. For a client
//!   this is exactly the paper's communication component (which, over a
//!   real network, necessarily includes the server's compute while the
//!   client awaits the product — the client cannot see across the wire).

use std::sync::Arc;
use std::time::{Duration, Instant};

use pps_obs::{names, Counter, Registry};

use crate::error::TransportError;
use crate::frame::Frame;
use crate::wire::{TrafficStats, Wire};

/// Shared wire counters. Cloning shares the underlying atomics, so one
/// `WireMetrics` can be handed to every connection of a server and the
/// registry sees the aggregate.
#[derive(Clone)]
pub struct WireMetrics {
    /// Frames written.
    pub frames_sent: Arc<Counter>,
    /// Payload bytes written.
    pub bytes_sent: Arc<Counter>,
    /// Frames read.
    pub frames_received: Arc<Counter>,
    /// Payload bytes read.
    pub bytes_received: Arc<Counter>,
    /// Send/recv operations that failed with
    /// [`TransportError::TimedOut`] (socket timeout or recv deadline).
    pub timeouts: Arc<Counter>,
}

impl WireMetrics {
    /// Counters registered under the canonical `pps_wire_*` names.
    pub fn from_registry(registry: &Registry) -> Self {
        WireMetrics {
            frames_sent: registry
                .counter(names::WIRE_FRAMES_SENT_TOTAL, "frames written to the wire"),
            bytes_sent: registry.counter(
                names::WIRE_BYTES_SENT_TOTAL,
                "payload bytes written to the wire",
            ),
            frames_received: registry.counter(
                names::WIRE_FRAMES_RECEIVED_TOTAL,
                "frames read from the wire",
            ),
            bytes_received: registry.counter(
                names::WIRE_BYTES_RECEIVED_TOTAL,
                "payload bytes read from the wire",
            ),
            timeouts: registry.counter(
                names::WIRE_TIMEOUTS_TOTAL,
                "wire operations that hit a timeout or expired deadline",
            ),
        }
    }

    pub(crate) fn on_send(&self, frame: &Frame) {
        self.frames_sent.inc();
        self.bytes_sent.add(frame.payload.len() as u64);
    }

    pub(crate) fn on_recv(&self, frame: &Frame) {
        self.frames_received.inc();
        self.bytes_received.add(frame.payload.len() as u64);
    }

    pub(crate) fn on_error(&self, error: &TransportError) {
        if matches!(error, TransportError::TimedOut) {
            self.timeouts.inc();
        }
    }
}

/// Wraps any [`Wire`] and accumulates the time the caller spends
/// blocked in `send` and `recv` — the client-observable communication
/// phase. Timing costs two `Instant::now()` calls per operation, which
/// is noise next to a socket round trip.
pub struct TimedWire<W> {
    inner: W,
    send_blocked: Duration,
    recv_blocked: Duration,
}

impl<W> TimedWire<W> {
    /// Wraps `inner` with zeroed stopwatches.
    pub fn new(inner: W) -> Self {
        TimedWire {
            inner,
            send_blocked: Duration::ZERO,
            recv_blocked: Duration::ZERO,
        }
    }

    /// Total time blocked in `send` so far.
    pub fn send_blocked(&self) -> Duration {
        self.send_blocked
    }

    /// Total time blocked in `recv` so far.
    pub fn recv_blocked(&self) -> Duration {
        self.recv_blocked
    }

    /// Total time blocked on the wire (send + recv).
    pub fn blocked(&self) -> Duration {
        self.send_blocked + self.recv_blocked
    }

    /// Shared access to the wrapped wire.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Exclusive access to the wrapped wire (e.g. to arm deadlines).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    /// Unwraps, discarding the stopwatches.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Wire> Wire for TimedWire<W> {
    fn send(&mut self, frame: Frame) -> Result<(), TransportError> {
        let start = Instant::now();
        let result = self.inner.send(frame);
        self.send_blocked += start.elapsed();
        result
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        let start = Instant::now();
        let result = self.inner.recv();
        self.recv_blocked += start.elapsed();
        result
    }

    fn stats(&self) -> TrafficStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpWire;

    #[test]
    fn wire_metrics_count_frames_bytes_and_timeouts() {
        let registry = Registry::new();
        let metrics = WireMetrics::from_registry(&registry);
        let (mut a, mut b) = TcpWire::pair_loopback().unwrap();
        a.set_metrics(metrics.clone());
        b.set_metrics(metrics.clone());
        a.send(Frame::new(1, vec![0; 100]).unwrap()).unwrap();
        a.send(Frame::new(2, vec![0; 50]).unwrap()).unwrap();
        let _ = b.recv().unwrap();
        let _ = b.recv().unwrap();
        assert_eq!(metrics.frames_sent.get(), 2);
        assert_eq!(metrics.bytes_sent.get(), 150);
        assert_eq!(metrics.frames_received.get(), 2);
        assert_eq!(metrics.bytes_received.get(), 150);
        assert_eq!(metrics.timeouts.get(), 0);

        b.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        assert_eq!(b.recv(), Err(TransportError::TimedOut));
        assert_eq!(metrics.timeouts.get(), 1);

        let text = registry.render_prometheus();
        assert!(text.contains("pps_wire_bytes_sent_total 150"));
        assert!(text.contains("pps_wire_timeouts_total 1"));
    }

    #[test]
    fn timed_wire_accumulates_blocked_time() {
        let (a, b) = TcpWire::pair_loopback().unwrap();
        let mut a = TimedWire::new(a);
        let mut b = TimedWire::new(b);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            a.send(Frame::new(1, vec![7; 8]).unwrap()).unwrap();
            a
        });
        let _ = b.recv().unwrap();
        assert!(
            b.recv_blocked() >= Duration::from_millis(40),
            "recv blocked across the peer's sleep: {:?}",
            b.recv_blocked()
        );
        assert_eq!(b.blocked(), b.send_blocked() + b.recv_blocked());
        let a = sender.join().unwrap();
        assert!(a.send_blocked() < Duration::from_millis(40));
        assert_eq!(a.into_inner().stats().messages_sent, 1);
    }

    #[test]
    fn timed_wire_times_failures_too() {
        let (_a, b) = TcpWire::pair_loopback().unwrap();
        let mut b = TimedWire::new(b);
        b.get_mut()
            .set_read_timeout(Some(Duration::from_millis(40)))
            .unwrap();
        assert_eq!(b.recv(), Err(TransportError::TimedOut));
        assert!(b.recv_blocked() >= Duration::from_millis(30));
    }
}
