//! Property tests for the frame codec: round trips for arbitrary
//! payloads, and — crucially for anything parsing network input — **no
//! panics on arbitrary byte soup**, only clean errors or requests for
//! more data.

use bytes::BytesMut;
use pps_transport::{Frame, LinkProfile, TransportError, HEADER_LEN};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn round_trip_arbitrary_payloads(
        msg_type in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let f = Frame::new(msg_type, payload.clone()).unwrap();
        prop_assert_eq!(f.encoded_len(), HEADER_LEN + payload.len());
        let mut buf = BytesMut::from(&f.encode()[..]);
        let back = Frame::decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(back.msg_type, msg_type);
        prop_assert_eq!(&back.payload[..], &payload[..]);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&bytes[..]);
        // Any result is fine — panic is not.
        let _ = Frame::decode(&mut buf);
    }

    #[test]
    fn truncated_valid_frames_ask_for_more(
        msg_type in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        cut_fraction in 0.0f64..1.0,
    ) {
        let f = Frame::new(msg_type, payload).unwrap();
        let encoded = f.encode();
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < encoded.len());
        let mut buf = BytesMut::from(&encoded[..cut]);
        // A prefix of a valid frame decodes to "need more" (the magic and
        // length fields are consistent), never to a wrong frame.
        match Frame::decode(&mut buf) {
            Ok(None) => {}
            Ok(Some(_)) => prop_assert!(false, "decoded a frame from a strict prefix"),
            Err(e) => prop_assert!(
                matches!(e, TransportError::FrameTooLarge { .. }),
                "unexpected error on prefix: {e}"
            ),
        }
    }

    #[test]
    fn concatenated_frames_all_decode(
        frames in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..64)),
            1..10,
        ),
    ) {
        let mut buf = BytesMut::new();
        for (t, p) in &frames {
            buf.extend_from_slice(&Frame::new(*t, p.clone()).unwrap().encode());
        }
        for (t, p) in &frames {
            let f = Frame::decode(&mut buf).unwrap().unwrap();
            prop_assert_eq!(f.msg_type, *t);
            prop_assert_eq!(&f.payload[..], &p[..]);
        }
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn link_times_are_monotone_in_bytes(
        small in 0usize..10_000,
        extra in 1usize..10_000,
    ) {
        for profile in [
            LinkProfile::gigabit_lan(),
            LinkProfile::modem_56k(),
            LinkProfile::cluster_switch(),
        ] {
            let a = profile.message_time(small);
            let b = profile.message_time(small + extra);
            prop_assert!(b >= a, "{}: {:?} < {:?}", profile.name, b, a);
            // Strict growth whenever the extra bytes amount to at least
            // a few nanoseconds (Duration has ns resolution; one byte on
            // a 64 Gbps switch is 0.125 ns and legitimately rounds away).
            if extra as f64 * 8.0 / profile.bandwidth_bps > 5e-9 {
                prop_assert!(b > a, "{}: {:?} !> {:?}", profile.name, b, a);
            }
        }
    }

    #[test]
    fn stream_time_beats_sequence_time(
        sizes in prop::collection::vec(1usize..4096, 2..20),
    ) {
        let profile = LinkProfile::modem_56k();
        let seq = profile.sequence_time(&sizes);
        let stream = profile.stream_time(sizes.iter().sum(), sizes.len());
        // Streaming pays one latency instead of k.
        prop_assert!(stream < seq);
        let saved = seq - stream;
        let expect = profile.latency * (sizes.len() as u32 - 1);
        prop_assert!(
            (saved.as_secs_f64() - expect.as_secs_f64()).abs() < 1e-6,
            "saved {saved:?} vs {expect:?}"
        );
    }

    #[test]
    fn pipeline_makespan_bounds(
        times in prop::collection::vec(1u64..50, 1..30),
        stages in 1usize..4,
    ) {
        use pps_transport::pipeline_makespan;
        let stage_times: Vec<Vec<Duration>> = (0..stages)
            .map(|_| times.iter().map(|&t| Duration::from_millis(t)).collect())
            .collect();
        let makespan = pipeline_makespan(&stage_times);
        let per_stage_total: u64 = times.iter().sum();
        // Lower bound: any single stage's total work.
        prop_assert!(makespan >= Duration::from_millis(per_stage_total));
        // Upper bound: fully sequential execution.
        prop_assert!(makespan <= Duration::from_millis(per_stage_total * stages as u64));
    }
}
