//! # pps — privacy-preserving statistics computation
//!
//! A from-scratch Rust implementation and experimental reproduction of
//!
//! > Subramaniam, Wright & Yang, *Experimental Analysis of
//! > Privacy-Preserving Statistics Computation*, Workshop on Secure Data
//! > Management (SDM), VLDB 2004.
//!
//! A **client** privately computes the sum (and mean, variance, weighted
//! average, …) of a selected subset of numbers held by a remote
//! **server**: the server never learns which rows were selected, and the
//! client learns nothing beyond the requested aggregate. The protocol
//! encrypts the client's 0/1 index vector under Paillier; the server
//! computes `Π E(I_i)^{x_i} = E(Σ I_i·x_i)` homomorphically.
//!
//! This facade re-exports the workspace's layers:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`bignum`] | `pps-bignum` | arbitrary-precision arithmetic, Montgomery, primes |
//! | [`crypto`] | `pps-crypto` | Paillier, preprocessing pools, SHA-256/HMAC/PRG |
//! | [`transport`] | `pps-transport` | simulated links (gigabit LAN, 56 Kbps modem), framing |
//! | [`protocol`] | `pps-protocol` | the selected-sum protocol + all paper optimizations |
//! | [`stats`] | `pps-stats` | private count/mean/variance/weighted-mean layer |
//! | [`gc`] | `pps-gc` | Yao garbled-circuit comparator (the Fairplay stand-in) |
//! | [`pir`] | `pps-pir` | sublinear-communication private retrieval (SPFE's other branch) |
//!
//! The most common entry points are re-exported at the top level and in
//! [`prelude`].
//!
//! # Quick start
//!
//! ```
//! use pps::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//!
//! // Server data and the client's private selection.
//! let db = Database::new(vec![120, 250, 310, 80, 440]).unwrap();
//! let sel = Selection::from_indices(5, &[1, 2, 4]).unwrap();
//!
//! // 512-bit keys as in the paper (use 2048+ in production).
//! let client = SumClient::generate(512, &mut rng).unwrap();
//! let report = run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
//!
//! assert_eq!(report.result, 250 + 310 + 440);
//! println!("{}", report.summary());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pps_bignum as bignum;
pub use pps_crypto as crypto;
pub use pps_gc as gc;
pub use pps_pir as pir;
pub use pps_protocol as protocol;
pub use pps_stats as stats;
pub use pps_transport as transport;

pub use pps_protocol::{
    run_basic, run_batched, run_combined, run_download_baseline, run_multiclient,
    run_plain_baseline, run_preprocessed, run_threaded, run_weighted, Database, ProtocolError,
    RunReport, Selection, SumClient, Variant,
};
pub use pps_stats::{private_moments, private_weighted_mean, run_stats_query, StatsReport, Wants};
pub use pps_transport::LinkProfile;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use pps_bignum::Uint;
    pub use pps_crypto::{PaillierKeypair, PaillierPublicKey, PaillierSecretKey};
    pub use pps_protocol::{
        run_basic, run_batched, run_combined, run_multiclient, run_preprocessed, Database,
        RunReport, Selection, SumClient, Variant,
    };
    pub use pps_stats::{private_moments, private_weighted_mean, StatsReport, Wants};
    pub use pps_transport::LinkProfile;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn facade_end_to_end() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let db = Database::new(vec![1, 2, 3]).unwrap();
        let sel = Selection::from_bits(&[true, true, false]);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let r = crate::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.result, 3);
    }
}
