//! Distributed trace context: the identity a query carries across
//! process boundaries.
//!
//! A [`TraceContext`] names one end-to-end operation (a query) with a
//! 128-bit `trace_id` and points at the span that caused the work on
//! the far side with a 64-bit `parent_span_id`. The client generates
//! the context, the protocol layer carries it inside the handshake
//! messages (`Hello` / `ShardHello` / `Resume` — see PROTOCOL.md §9.4),
//! and every [`SpanRecord`](crate::SpanRecord) /
//! [`EventRecord`](crate::EventRecord) either side emits while serving
//! that query is stamped with it. A collector keyed by `trace_id` (the
//! [`TraceBuffer`](crate::TraceBuffer)) can then hand a remote caller
//! exactly the spans belonging to its query and nothing else.
//!
//! The context is deliberately tiny and `Copy`: 24 bytes on the wire,
//! no allocation, no global state.

/// The on-wire width of an encoded context: `trace_id` (16 bytes,
/// big-endian) followed by `parent_span_id` (8 bytes, big-endian).
pub const TRACE_CONTEXT_WIRE_LEN: usize = 24;

/// One query's distributed-tracing identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the whole distributed operation. Non-zero by
    /// convention (zero reads as "absent" in human output); generated
    /// from the caller's RNG, never derived from data.
    pub trace_id: u128,
    /// The span on the *initiating* side under which the receiver's
    /// work should be parented (e.g. the client's per-leg span id).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// A context with the given ids.
    pub fn new(trace_id: u128, parent_span_id: u64) -> Self {
        TraceContext {
            trace_id,
            parent_span_id,
        }
    }

    /// Encodes as exactly [`TRACE_CONTEXT_WIRE_LEN`] big-endian bytes.
    pub fn to_wire_bytes(&self) -> [u8; TRACE_CONTEXT_WIRE_LEN] {
        let mut out = [0u8; TRACE_CONTEXT_WIRE_LEN];
        out[..16].copy_from_slice(&self.trace_id.to_be_bytes());
        out[16..].copy_from_slice(&self.parent_span_id.to_be_bytes());
        out
    }

    /// Decodes the exact [`TRACE_CONTEXT_WIRE_LEN`]-byte layout;
    /// `None` on any other length.
    pub fn from_wire_bytes(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() != TRACE_CONTEXT_WIRE_LEN {
            return None;
        }
        let trace_id = u128::from_be_bytes(bytes[..16].try_into().ok()?);
        let parent_span_id = u64::from_be_bytes(bytes[16..].try_into().ok()?);
        Some(TraceContext {
            trace_id,
            parent_span_id,
        })
    }

    /// The trace id as 32 lowercase hex digits — the form used in
    /// JSONL output and in the `/trace/<id>` URL.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// Parses a trace id as produced by [`TraceContext::trace_id_hex`]
    /// (leading zeros optional, case-insensitive).
    pub fn parse_trace_id(hex: &str) -> Option<u128> {
        if hex.is_empty() || hex.len() > 32 {
            return None;
        }
        u128::from_str_radix(hex, 16).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let ctx = TraceContext::new(0x0123_4567_89ab_cdef_0011_2233_4455_6677, 42);
        let bytes = ctx.to_wire_bytes();
        assert_eq!(bytes.len(), TRACE_CONTEXT_WIRE_LEN);
        assert_eq!(TraceContext::from_wire_bytes(&bytes), Some(ctx));
        assert_eq!(TraceContext::from_wire_bytes(&bytes[..23]), None);
        assert_eq!(TraceContext::from_wire_bytes(&[0u8; 25]), None);
    }

    #[test]
    fn hex_round_trip() {
        let ctx = TraceContext::new(0xdead_beef, 7);
        let hex = ctx.trace_id_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.ends_with("deadbeef"));
        assert_eq!(TraceContext::parse_trace_id(&hex), Some(0xdead_beef));
        assert_eq!(TraceContext::parse_trace_id("DEADBEEF"), Some(0xdead_beef));
        assert_eq!(TraceContext::parse_trace_id(""), None);
        assert_eq!(TraceContext::parse_trace_id("xyz"), None);
        assert_eq!(
            TraceContext::parse_trace_id(&"f".repeat(33)),
            None,
            "over-long ids rejected"
        );
    }
}
