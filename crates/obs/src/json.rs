//! The workspace's single hand-rolled JSON serializer *and parser*.
//!
//! The workspace deliberately carries no serde (every dependency is a
//! vendored offline subset), so the places that need JSON — the JSONL
//! span collector, the `/healthz` snapshot, `RunReport::to_json`, and
//! the `BENCH_*.json` writers — all share this one escaping-correct
//! writer instead of each hand-formatting strings. The matching
//! [`JsonValue::parse`] reader exists for the few places that consume
//! JSON back (the distributed-trace assembler reading `/trace/<id>`
//! JSONL, and the `bench_report` bin reading `BENCH_*.json`).

use std::fmt::Write as _;
use std::time::Duration;

/// A JSON value, built imperatively and rendered with [`JsonValue::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::field`] chaining.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// An array built from anything convertible to values.
    pub fn array<T: Into<JsonValue>>(items: impl IntoIterator<Item = T>) -> JsonValue {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }

    /// Appends a key/value pair; panics if `self` is not an object
    /// (builder misuse, not runtime data).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object JsonValue {other:?}"),
        }
        self
    }

    /// A duration rendered as fractional seconds.
    pub fn seconds(d: Duration) -> JsonValue {
        JsonValue::Float(d.as_secs_f64())
    }

    /// Parses one JSON document. Strict where it matters (rejects
    /// trailing garbage, unterminated strings, bad escapes) and
    /// deliberately small: numbers become [`JsonValue::UInt`] /
    /// [`JsonValue::Int`] when they are integral and in range, floats
    /// otherwise; objects keep duplicate keys in arrival order (use
    /// [`JsonValue::get`], which returns the first).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// The value under `key`, when `self` is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `bool`, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// This value as an `f64`, when it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// This value's items, when it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace beyond what strings contain).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders with two-space indentation, for human-facing files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => render_float(*v, out),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\": ");
                    v.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 == fields.len() { "\n" } else { ",\n" });
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}", pos = *pos));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogates are not paired — the writer never
                        // emits them (it escapes only control chars),
                        // so map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing
                // on char boundaries is safe via str::chars).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty rest");
                if (c as u32) < 0x20 {
                    return Err(format!("raw control char at byte {pos}", pos = *pos));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if text.is_empty() || text == "-" {
        return Err(format!("expected value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(JsonValue::Int(v));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn render_float(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` on f64 is shortest-round-trip; force a decimal point so
        // integral floats stay floats on the way back in.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Escapes a string for inclusion inside JSON quotes (RFC 8259: quote,
/// backslash, and control characters).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(JsonValue::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::UInt(7).render(), "7");
        assert_eq!(JsonValue::Int(-3).render(), "-3");
        assert_eq!(JsonValue::Float(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0", "keeps the point");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn object_and_array_compose() {
        let v = JsonValue::object()
            .field("name", "x")
            .field("ns", JsonValue::array([1u64, 2, 3]))
            .field("nested", JsonValue::object().field("ok", true));
        assert_eq!(
            v.render(),
            r#"{"name":"x","ns":[1,2,3],"nested":{"ok":true}}"#
        );
    }

    #[test]
    fn escaping_is_correct() {
        assert_eq!(escape_json("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
        let v = JsonValue::Str("line\nbreak \"quoted\"".into());
        assert_eq!(v.render(), "\"line\\nbreak \\\"quoted\\\"\"");
    }

    #[test]
    fn option_and_duration_helpers() {
        let some: Option<u64> = Some(4);
        let none: Option<u64> = None;
        assert_eq!(JsonValue::from(some).render(), "4");
        assert_eq!(JsonValue::from(none).render(), "null");
        assert_eq!(
            JsonValue::seconds(Duration::from_millis(1500)).render(),
            "1.5"
        );
    }

    #[test]
    fn pretty_render_is_indented_and_reparsable_shape() {
        let v = JsonValue::object()
            .field("a", 1u64)
            .field("b", JsonValue::array(["x", "y"]))
            .field("empty", JsonValue::object());
        let pretty = v.render_pretty();
        assert!(pretty.contains("\"a\": 1"));
        assert!(pretty.contains("  \"b\": [\n"));
        assert!(pretty.contains("\"empty\": {}"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_array_panics() {
        let _ = JsonValue::array([1u64]).field("k", 1u64);
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = JsonValue::object()
            .field("name", "x\n\"quoted\"")
            .field("n", 42u64)
            .field("neg", -7i64)
            .field("f", 1.5f64)
            .field("flag", true)
            .field("nothing", JsonValue::Null)
            .field("items", JsonValue::array([1u64, 2, 3]))
            .field("nested", JsonValue::object().field("ok", false));
        let parsed = JsonValue::parse(&v.render()).expect("parse compact");
        assert_eq!(parsed, v);
        let parsed_pretty = JsonValue::parse(&v.render_pretty()).expect("parse pretty");
        assert_eq!(parsed_pretty, v);
    }

    #[test]
    fn parse_accessors() {
        let v = JsonValue::parse(r#"{"a":1,"b":"s","c":[2,3],"d":1.25}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("s"));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("d").and_then(JsonValue::as_f64), Some(1.25));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("a").and_then(JsonValue::as_str), None);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = JsonValue::parse(r#""aA\n\t\\ é""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\\ é"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a":}"#,
            "tru",
            "1 2",
            r#""unterminated"#,
            r#"{"a":1}x"#,
            "nul",
            "[1,]x",
            "-",
            r#""bad \q escape""#,
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_large_integers_stay_exact() {
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
        assert_eq!(
            JsonValue::parse("-9223372036854775808").unwrap(),
            JsonValue::Int(i64::MIN)
        );
    }
}
