//! The workspace's single hand-rolled JSON serializer.
//!
//! The workspace deliberately carries no serde (every dependency is a
//! vendored offline subset), so the places that need JSON — the JSONL
//! span collector, the `/healthz` snapshot, `RunReport::to_json`, and
//! the `BENCH_*.json` writers — all share this one escaping-correct
//! writer instead of each hand-formatting strings.

use std::fmt::Write as _;
use std::time::Duration;

/// A JSON value, built imperatively and rendered with [`JsonValue::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, ready for [`JsonValue::field`] chaining.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// An array built from anything convertible to values.
    pub fn array<T: Into<JsonValue>>(items: impl IntoIterator<Item = T>) -> JsonValue {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }

    /// Appends a key/value pair; panics if `self` is not an object
    /// (builder misuse, not runtime data).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object JsonValue {other:?}"),
        }
        self
    }

    /// A duration rendered as fractional seconds.
    pub fn seconds(d: Duration) -> JsonValue {
        JsonValue::Float(d.as_secs_f64())
    }

    /// Renders compactly (no whitespace beyond what strings contain).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders with two-space indentation, for human-facing files.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => render_float(*v, out),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                pad(out, depth);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\": ");
                    v.render_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 == fields.len() { "\n" } else { ",\n" });
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }
}

fn render_float(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` on f64 is shortest-round-trip; force a decimal point so
        // integral floats stay floats on the way back in.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Escapes a string for inclusion inside JSON quotes (RFC 8259: quote,
/// backslash, and control characters).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(JsonValue::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::UInt(7).render(), "7");
        assert_eq!(JsonValue::Int(-3).render(), "-3");
        assert_eq!(JsonValue::Float(1.5).render(), "1.5");
        assert_eq!(JsonValue::Float(2.0).render(), "2.0", "keeps the point");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn object_and_array_compose() {
        let v = JsonValue::object()
            .field("name", "x")
            .field("ns", JsonValue::array([1u64, 2, 3]))
            .field("nested", JsonValue::object().field("ok", true));
        assert_eq!(
            v.render(),
            r#"{"name":"x","ns":[1,2,3],"nested":{"ok":true}}"#
        );
    }

    #[test]
    fn escaping_is_correct() {
        assert_eq!(escape_json("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
        let v = JsonValue::Str("line\nbreak \"quoted\"".into());
        assert_eq!(v.render(), "\"line\\nbreak \\\"quoted\\\"\"");
    }

    #[test]
    fn option_and_duration_helpers() {
        let some: Option<u64> = Some(4);
        let none: Option<u64> = None;
        assert_eq!(JsonValue::from(some).render(), "4");
        assert_eq!(JsonValue::from(none).render(), "null");
        assert_eq!(
            JsonValue::seconds(Duration::from_millis(1500)).render(),
            "1.5"
        );
    }

    #[test]
    fn pretty_render_is_indented_and_reparsable_shape() {
        let v = JsonValue::object()
            .field("a", 1u64)
            .field("b", JsonValue::array(["x", "y"]))
            .field("empty", JsonValue::object());
        let pretty = v.render_pretty();
        assert!(pretty.contains("\"a\": 1"));
        assert!(pretty.contains("  \"b\": [\n"));
        assert!(pretty.contains("\"empty\": {}"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_array_panics() {
        let _ = JsonValue::array([1u64]).field("k", 1u64);
    }
}
