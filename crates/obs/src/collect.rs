//! Span/event collectors: where [`Tracer`](crate::Tracer) output goes.
//!
//! Collectors are deliberately dumb sinks — classification and
//! aggregation happen either upstream (the tracer's phase tags) or
//! downstream (the metrics registry, the span→`RunReport` bridge).

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::span::{EventRecord, SpanRecord};

/// A sink for completed spans and events. Implementations must be
/// `Send + Sync`: server sessions record from many threads at once.
pub trait Collector: Send + Sync {
    /// Accepts one completed span.
    fn record_span(&self, span: SpanRecord);
    /// Accepts one event.
    fn record_event(&self, event: EventRecord);
}

/// Drops everything (the disabled-instrumentation default).
pub struct NullCollector;

impl Collector for NullCollector {
    fn record_span(&self, _: SpanRecord) {}
    fn record_event(&self, _: EventRecord) {}
}

/// One record of either kind, in arrival order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A completed span.
    Span(SpanRecord),
    /// An event.
    Event(EventRecord),
}

/// Bounded in-memory collector: keeps the most recent `capacity`
/// records, dropping the oldest (and counting the drops) when full.
pub struct RingCollector {
    capacity: usize,
    inner: Mutex<Ring>,
}

#[derive(Default)]
struct Ring {
    records: VecDeque<Record>,
    dropped: u64,
}

impl RingCollector {
    /// A ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        RingCollector {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring::default()),
        }
    }

    fn push(&self, record: Record) {
        let mut ring = self.inner.lock().expect("ring lock");
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(record);
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        self.inner
            .lock()
            .expect("ring lock")
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Retained spans only, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                Record::Event(_) => None,
            })
            .collect()
    }

    /// Retained events only, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Event(e) => Some(e),
                Record::Span(_) => None,
            })
            .collect()
    }

    /// Records evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring lock").dropped
    }

    /// Removes and returns every retained record, oldest first.
    pub fn drain(&self) -> Vec<Record> {
        std::mem::take(&mut self.inner.lock().expect("ring lock").records).into()
    }
}

impl Collector for RingCollector {
    fn record_span(&self, span: SpanRecord) {
        self.push(Record::Span(span));
    }

    fn record_event(&self, event: EventRecord) {
        self.push(Record::Event(event));
    }
}

/// Writes each record as one line of JSON to any `Write` sink — a file,
/// a pipe, stderr, or an in-memory buffer. Lines never interleave: the
/// writer sits behind a mutex.
pub struct JsonLinesCollector<W: Write + Send> {
    inner: Mutex<W>,
}

impl<W: Write + Send> JsonLinesCollector<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonLinesCollector {
            inner: Mutex::new(writer),
        }
    }

    /// Unwraps the writer (for tests and buffered sinks).
    pub fn into_inner(self) -> W {
        self.inner.into_inner().expect("jsonl lock")
    }

    fn write_line(&self, json: crate::json::JsonValue) {
        let mut line = json.render();
        line.push('\n');
        // A full disk or closed pipe must not take the protocol down
        // with it; tracing is best-effort by design.
        let _ = self
            .inner
            .lock()
            .expect("jsonl lock")
            .write_all(line.as_bytes());
    }
}

impl<W: Write + Send> Collector for JsonLinesCollector<W> {
    fn record_span(&self, span: SpanRecord) {
        self.write_line(span.to_json());
    }

    fn record_event(&self, event: EventRecord) {
        self.write_line(event.to_json());
    }
}

/// Fans every record out to several collectors — e.g. a ring for the
/// span→report bridge *and* a JSONL file for offline analysis.
pub struct TeeCollector {
    sinks: Vec<Arc<dyn Collector>>,
}

impl TeeCollector {
    /// A tee over `sinks` (cloned records, in order).
    pub fn new(sinks: Vec<Arc<dyn Collector>>) -> Self {
        TeeCollector { sinks }
    }
}

impl Collector for TeeCollector {
    fn record_span(&self, span: SpanRecord) {
        for sink in &self.sinks {
            sink.record_span(span.clone());
        }
    }

    fn record_event(&self, event: EventRecord) {
        for sink in &self.sinks {
            sink.record_event(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, Tracer};

    fn span(name: &str, start: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            phase: Some(Phase::Comm),
            session: None,
            batch: None,
            start_ns: start,
            end_ns: start + 1,
            trace: None,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let ring = RingCollector::new(2);
        ring.record_span(span("a", 0));
        ring.record_event(EventRecord {
            name: "e".into(),
            session: None,
            at_ns: 1,
            detail: String::new(),
            trace: None,
        });
        ring.record_span(span("b", 2));
        assert_eq!(ring.dropped(), 1, "'a' was evicted");
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(ring.spans().len(), 1);
        assert_eq!(ring.spans()[0].name, "b");
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.records().is_empty(), "drain empties the ring");
    }

    #[test]
    fn jsonl_writes_one_line_per_record() {
        let collector = JsonLinesCollector::new(Vec::new());
        collector.record_span(span("s", 5));
        collector.record_event(EventRecord {
            name: "ev".into(),
            session: Some(1),
            at_ns: 9,
            detail: "d".into(),
            trace: None,
        });
        let text = String::from_utf8(collector.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"kind":"span""#));
        assert!(lines[1].starts_with(r#"{"kind":"event""#));
    }

    #[test]
    fn tee_duplicates_to_every_sink() {
        let a = Arc::new(RingCollector::new(4));
        let b = Arc::new(RingCollector::new(4));
        let tee = TeeCollector::new(vec![a.clone(), b.clone()]);
        tee.record_span(span("x", 0));
        assert_eq!(a.spans().len(), 1);
        assert_eq!(b.spans().len(), 1);
    }

    #[test]
    fn collectors_accept_concurrent_writers() {
        let ring = Arc::new(RingCollector::new(1024));
        let tracer = Tracer::new(ring.clone());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        tracer.span("w").session(t).batch(i).start().finish();
                    }
                });
            }
        });
        assert_eq!(ring.spans().len(), 200);
        assert_eq!(ring.dropped(), 0);
    }
}
