//! # pps-obs
//!
//! Zero-dependency observability for the privacy-preserving statistics
//! workspace. The paper's whole contribution is *measurement* — every
//! figure decomposes runtime into client encryption, communication,
//! server computation, and client decryption — and this crate makes that
//! same four-component decomposition continuously visible in a running
//! deployment instead of only in one-shot
//! `RunReport`s:
//!
//! * **Phase spans** ([`span`]) — lightweight [`SpanRecord`]/
//!   [`EventRecord`] values with monotonic timestamps, session/batch
//!   ids, and the paper's phase labels ([`Phase`]), emitted through a
//!   pluggable [`Collector`] (in-memory [`RingCollector`], line-delimited
//!   JSON [`JsonLinesCollector`], fan-out [`TeeCollector`]).
//! * **Metrics registry** ([`metrics`], [`registry`]) — lock-free
//!   [`Counter`]s and [`Gauge`]s plus log-linear-bucket [`Histogram`]s
//!   (p50/p95/p99) behind a name-keyed [`Registry`].
//! * **Exposition** ([`http`]) — a std-only [`MetricsServer`] serving
//!   `GET /metrics` in Prometheus text format and `GET /healthz` as a
//!   JSON snapshot.
//! * **JSON** ([`json`]) — the workspace's single hand-rolled JSON
//!   serializer (the workspace deliberately carries no serde), shared by
//!   the JSONL collector, the health endpoint, `RunReport::to_json`, and
//!   the bench result files.
//!
//! Everything here is plain `std`: no macros, no globals, no background
//! allocation on the hot path beyond one `String` per span name.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use pps_obs::{Phase, Registry, RingCollector, Tracer};
//!
//! let registry = Registry::new();
//! let encrypt = registry.histogram_with_label(
//!     "pps_phase_duration_seconds", "per-phase runtime", "phase", Phase::ClientEncrypt.label());
//!
//! let ring = Arc::new(RingCollector::new(128));
//! let tracer = Tracer::new(ring.clone());
//! let span = tracer.span("encrypt_batch").phase(Phase::ClientEncrypt).session(1).start();
//! // ... do the work ...
//! let record = span.finish();
//! encrypt.record_duration(record.duration());
//!
//! assert_eq!(ring.spans().len(), 1);
//! assert!(registry.render_prometheus().contains("pps_phase_duration_seconds_bucket"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod collect;
pub mod context;
pub mod http;
pub mod json;
pub mod metrics;
pub mod names;
pub mod registry;
pub mod span;
pub mod trace_buffer;

pub use clock::{real_clock, Clock, RealClock, SharedClock, VirtualClock};
pub use collect::{
    Collector, JsonLinesCollector, NullCollector, Record, RingCollector, TeeCollector,
};
pub use context::{TraceContext, TRACE_CONTEXT_WIRE_LEN};
pub use http::MetricsServer;
pub use json::{escape_json, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::Registry;
pub use span::{EventRecord, Phase, SpanBuilder, SpanGuard, SpanRecord, Tracer};
pub use trace_buffer::TraceBuffer;
