//! A name-keyed metrics registry with Prometheus text exposition.
//!
//! The registry is the rendezvous point between instrumented code and
//! scrapers: layers call [`Registry::counter`] /
//! [`Registry::histogram_with_label`] etc. to get-or-create a metric
//! handle (an `Arc` they cache and update lock-free), and the HTTP
//! endpoint calls [`Registry::render_prometheus`] /
//! [`Registry::healthz_json`] to snapshot everything. Registration is
//! idempotent — two callers asking for the same `(name, label)` get the
//! same underlying atomic — so client and server halves of a loopback
//! deployment can share one registry and their observations merge.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::JsonValue;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::span::Phase;

/// One labelled (or unlabelled) time series inside a family.
struct Series<T> {
    /// `(key, value)` pairs in registration order; empty for an
    /// unlabelled series. Most metrics carry zero or one label; the
    /// multi-label case exists for info-style gauges
    /// (`pps_build_info{version=...,magic=...}`).
    labels: Vec<(String, String)>,
    metric: Arc<T>,
}

enum FamilyKind {
    Counter(Vec<Series<Counter>>),
    Gauge(Vec<Series<Gauge>>),
    Histogram(Vec<Series<Histogram>>),
}

impl FamilyKind {
    fn type_name(&self) -> &'static str {
        match self {
            FamilyKind::Counter(_) => "counter",
            FamilyKind::Gauge(_) => "gauge",
            FamilyKind::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    help: String,
    kind: FamilyKind,
}

/// A registry of named metrics. Cheap to share (`Arc<Registry>`);
/// metric handles, once obtained, update without touching the registry
/// lock.
pub struct Registry {
    start: Instant,
    inner: Mutex<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn find_or_insert<T: Default>(series: &mut Vec<Series<T>>, labels: &[(&str, &str)]) -> Arc<T> {
    if let Some(existing) = series.iter().find(|s| {
        s.labels.len() == labels.len()
            && s.labels
                .iter()
                .zip(labels)
                .all(|((k, v), (lk, lv))| k == lk && v == lv)
    }) {
        return Arc::clone(&existing.metric);
    }
    let metric = Arc::new(T::default());
    series.push(Series {
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        metric: Arc::clone(&metric),
    });
    metric
}

impl Registry {
    /// An empty registry; its uptime clock starts now.
    pub fn new() -> Self {
        Registry {
            start: Instant::now(),
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    fn series<T, F, G>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        wrap: F,
        unwrap: G,
    ) -> Arc<T>
    where
        T: Default,
        F: FnOnce() -> FamilyKind,
        G: FnOnce(&mut FamilyKind) -> Option<&mut Vec<Series<T>>>,
    {
        let mut map = self.inner.lock().expect("registry lock");
        let family = map.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: wrap(),
        });
        let type_name = family.kind.type_name();
        match unwrap(&mut family.kind) {
            Some(series) => find_or_insert(series, labels),
            None => panic!("metric {name} already registered as a {type_name}"),
        }
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a counter with one `key="value"` label.
    pub fn counter_with_label(
        &self,
        name: &str,
        help: &str,
        key: &str,
        value: &str,
    ) -> Arc<Counter> {
        self.counter_with(name, help, &[(key, value)])
    }

    fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.series(
            name,
            help,
            labels,
            || FamilyKind::Counter(Vec::new()),
            |kind| match kind {
                FamilyKind::Counter(s) => Some(s),
                _ => None,
            },
        )
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with_labels(name, help, &[])
    }

    /// Get-or-create a gauge with an arbitrary (low-cardinality!) label
    /// set — the shape of info-style metrics like `pps_build_info`.
    pub fn gauge_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.series(
            name,
            help,
            labels,
            || FamilyKind::Gauge(Vec::new()),
            |kind| match kind {
                FamilyKind::Gauge(s) => Some(s),
                _ => None,
            },
        )
    }

    /// Get-or-create an unlabelled duration histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Get-or-create a duration histogram with one `key="value"` label.
    pub fn histogram_with_label(
        &self,
        name: &str,
        help: &str,
        key: &str,
        value: &str,
    ) -> Arc<Histogram> {
        self.histogram_with(name, help, &[(key, value)])
    }

    fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.series(
            name,
            help,
            labels,
            || FamilyKind::Histogram(Vec::new()),
            |kind| match kind {
                FamilyKind::Histogram(s) => Some(s),
                _ => None,
            },
        )
    }

    /// The per-phase duration histogram for `phase` — the one metric
    /// every layer shares, so it gets a dedicated accessor.
    pub fn phase_histogram(&self, phase: Phase) -> Arc<Histogram> {
        self.histogram_with_label(
            crate::names::PHASE_DURATION_SECONDS,
            "runtime of each protocol phase (the paper's four-component decomposition)",
            "phase",
            phase.label(),
        )
    }

    /// Seconds since the registry was created.
    pub fn uptime(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Renders every metric in Prometheus text exposition format 0.0.4.
    ///
    /// Histograms emit cumulative `_bucket` lines only for non-empty
    /// buckets plus the mandatory `le="+Inf"`, then `_sum` (seconds)
    /// and `_count`. Families and series render in deterministic order
    /// (names sorted, series by label value), so two scrapes of a quiet
    /// registry are byte-identical.
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.lock().expect("registry lock");
        let mut out = String::new();
        for (name, family) in map.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.type_name()));
            match &family.kind {
                FamilyKind::Counter(series) => {
                    for s in sorted(series) {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            label_block(&s.labels, None),
                            s.metric.get()
                        ));
                    }
                }
                FamilyKind::Gauge(series) => {
                    for s in sorted(series) {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            label_block(&s.labels, None),
                            s.metric.get()
                        ));
                    }
                }
                FamilyKind::Histogram(series) => {
                    for s in sorted(series) {
                        let snap = s.metric.snapshot();
                        for (upper_ns, cumulative) in snap.cumulative_buckets() {
                            if upper_ns == u64::MAX {
                                continue; // folded into +Inf below
                            }
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                label_block(&s.labels, Some(&le_seconds(upper_ns)))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            label_block(&s.labels, Some("+Inf")),
                            snap.count
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            label_block(&s.labels, None),
                            float(snap.sum_ns as f64 / 1e9)
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            label_block(&s.labels, None),
                            snap.count
                        ));
                    }
                }
            }
        }
        out
    }

    /// A JSON health snapshot: uptime plus every counter, gauge, and
    /// histogram summary (count, sum, p50/p95/p99). Served at
    /// `/healthz` but also useful directly in tests.
    pub fn healthz_json(&self) -> JsonValue {
        let map = self.inner.lock().expect("registry lock");
        let mut counters = JsonValue::object();
        let mut gauges = JsonValue::object();
        let mut histograms = JsonValue::object();
        for (name, family) in map.iter() {
            match &family.kind {
                FamilyKind::Counter(series) => {
                    for s in sorted(series) {
                        counters = counters.field(&series_key(name, &s.labels), s.metric.get());
                    }
                }
                FamilyKind::Gauge(series) => {
                    for s in sorted(series) {
                        gauges = gauges.field(&series_key(name, &s.labels), s.metric.get());
                    }
                }
                FamilyKind::Histogram(series) => {
                    for s in sorted(series) {
                        let snap = s.metric.snapshot();
                        histograms = histograms.field(
                            &series_key(name, &s.labels),
                            JsonValue::object()
                                .field("count", snap.count)
                                .field("sum_seconds", snap.sum_ns as f64 / 1e9)
                                .field("p50_seconds", snap.p50().as_secs_f64())
                                .field("p95_seconds", snap.p95().as_secs_f64())
                                .field("p99_seconds", snap.p99().as_secs_f64()),
                        );
                    }
                }
            }
        }
        JsonValue::object()
            .field("status", "ok")
            .field("uptime_seconds", self.uptime())
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }
}

/// Series sorted by labels for deterministic output.
fn sorted<T>(series: &[Series<T>]) -> Vec<&Series<T>> {
    let mut refs: Vec<&Series<T>> = series.iter().collect();
    refs.sort_by(|a, b| a.labels.cmp(&b.labels));
    refs
}

/// `{k1="v1",k2="v2",le="..."}` in registration order, or empty.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    let mut parts = Vec::new();
    for (k, v) in labels {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{name}{{{}}}", pairs.join(","))
    }
}

/// A histogram bound in seconds, shortest round-trip.
fn le_seconds(upper_ns: u64) -> String {
    float(upper_ns as f64 / 1e9)
}

fn float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E', 'n', 'i']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let registry = Registry::new();
        let a = registry.counter("pps_test_total", "test");
        let b = registry.counter("pps_test_total", "other help ignored");
        a.add(3);
        assert_eq!(b.get(), 3, "same underlying atomic");
        let la = registry.counter_with_label("pps_labelled_total", "h", "phase", "comm");
        let lb = registry.counter_with_label("pps_labelled_total", "h", "phase", "comm");
        let lc = registry.counter_with_label("pps_labelled_total", "h", "phase", "fold");
        la.inc();
        assert_eq!(lb.get(), 1);
        assert_eq!(lc.get(), 0, "different label, different series");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let registry = Registry::new();
        let _ = registry.counter("pps_conflict", "h");
        let _ = registry.gauge("pps_conflict", "h");
    }

    #[test]
    fn prometheus_render_has_help_type_and_series() {
        let registry = Registry::new();
        registry.counter("pps_b_total", "second").add(2);
        registry.gauge("pps_a_gauge", "first").set(-4);
        let text = registry.render_prometheus();
        let a = text.find("# HELP pps_a_gauge first").expect("gauge help");
        let b = text
            .find("# HELP pps_b_total second")
            .expect("counter help");
        assert!(a < b, "families sorted by name");
        assert!(text.contains("# TYPE pps_a_gauge gauge\npps_a_gauge -4\n"));
        assert!(text.contains("# TYPE pps_b_total counter\npps_b_total 2\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let registry = Registry::new();
        let h = registry.histogram_with_label("pps_h_seconds", "h", "phase", "comm");
        h.record_duration(Duration::from_micros(100));
        h.record_duration(Duration::from_micros(100));
        h.record_duration(Duration::from_millis(50));
        let text = registry.render_prometheus();
        assert!(text.contains(r#"pps_h_seconds_bucket{phase="comm",le="+Inf"} 3"#));
        assert!(text.contains(r#"pps_h_seconds_count{phase="comm"} 3"#));
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("pps_h_seconds_sum"))
            .expect("sum line");
        let sum: f64 = sum_line.split_whitespace().last().unwrap().parse().unwrap();
        assert!((sum - 0.0502).abs() < 1e-6, "sum in seconds: {sum}");
        // Buckets are cumulative and sorted ascending by le.
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("pps_h_seconds_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*bucket_counts.last().unwrap(), 3);
    }

    #[test]
    fn quiet_registry_scrapes_are_identical() {
        let registry = Registry::new();
        registry.counter("pps_x_total", "x").add(7);
        registry
            .phase_histogram(Phase::Comm)
            .record_duration(Duration::from_millis(1));
        assert_eq!(registry.render_prometheus(), registry.render_prometheus());
    }

    #[test]
    fn healthz_contains_all_families() {
        let registry = Registry::new();
        registry.counter("pps_c_total", "c").add(1);
        registry.gauge("pps_g", "g").set(2);
        registry
            .histogram("pps_d_seconds", "d")
            .record_duration(Duration::from_millis(3));
        let json = registry.healthz_json().render();
        assert!(json.contains(r#""status":"ok""#));
        assert!(json.contains(r#""pps_c_total":1"#));
        assert!(json.contains(r#""pps_g":2"#));
        assert!(json.contains(r#""pps_d_seconds":{"count":1"#));
    }

    #[test]
    fn multi_label_gauges_render_all_pairs() {
        let registry = Registry::new();
        let g = registry.gauge_with_labels(
            "pps_build_info",
            "build identity",
            &[("version", "0.1.0"), ("magic", "0x5054")],
        );
        g.set(1);
        let again = registry.gauge_with_labels(
            "pps_build_info",
            "build identity",
            &[("version", "0.1.0"), ("magic", "0x5054")],
        );
        assert_eq!(again.get(), 1, "same label set, same series");
        let text = registry.render_prometheus();
        assert!(
            text.contains(r#"pps_build_info{version="0.1.0",magic="0x5054"} 1"#),
            "labels in registration order: {text}"
        );
        let health = registry.healthz_json().render();
        assert!(health.contains(r#"pps_build_info{version=\"0.1.0\",magic=\"0x5054\"}"#));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with_label("pps_esc_total", "h", "k", "a\"b\\c")
            .inc();
        let text = registry.render_prometheus();
        assert!(text.contains(r#"pps_esc_total{k="a\"b\\c"} 1"#));
    }
}
