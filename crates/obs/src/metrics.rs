//! Metric primitives: atomic counters and gauges, and a log-linear
//! bucketed duration histogram.
//!
//! Everything here is wait-free on the hot path (one or two relaxed
//! atomic RMWs per observation) so instrumentation can sit inside the
//! transport's per-frame send/recv and the server's per-batch fold
//! without measurable cost next to a 512-bit modular exponentiation.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (active sessions, pool
/// depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `v` (may be negative).
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Subtracts `v`.
    pub fn sub(&self, v: i64) {
        self.add(-v);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Smallest power of two with its own bucket decade: 2^10 ns ≈ 1 µs.
/// Everything below lands in the linear sub-range of bucket group 0.
const FIRST_POW: u32 = 10;
/// Largest represented power of two: 2^36 ns ≈ 68.7 s; beyond that is
/// the overflow bucket.
const LAST_POW: u32 = 36;
/// Linear sub-buckets per power-of-two decade; relative quantile error
/// is bounded by 1/SUBS = 12.5 %.
const SUBS: u32 = 8;
/// log2(SUBS), for shift arithmetic.
const SUB_SHIFT: u32 = 3;
/// Total bucket count: the sub-2^10 linear range, the log-linear body,
/// and one overflow bucket.
const NUM_BUCKETS: usize = (SUBS + (LAST_POW - FIRST_POW) * SUBS + 1) as usize;

/// Maps a nanosecond value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < (1 << FIRST_POW) {
        // Linear range [0, 2^10): width 2^10 / SUBS.
        (v >> (FIRST_POW - SUB_SHIFT)) as usize
    } else {
        let pow = 63 - v.leading_zeros(); // MSB position, >= FIRST_POW
        if pow >= LAST_POW {
            return NUM_BUCKETS - 1;
        }
        let sub = ((v - (1u64 << pow)) >> (pow - SUB_SHIFT)) as usize;
        (SUBS + (pow - FIRST_POW) * SUBS) as usize + sub
    }
}

/// The inclusive upper bound (in nanoseconds) of bucket `i`;
/// `u64::MAX` for the overflow bucket.
fn bucket_upper_ns(i: usize) -> u64 {
    let i = i as u64;
    let subs = u64::from(SUBS);
    if i < subs {
        (i + 1) << (FIRST_POW - SUB_SHIFT)
    } else if i < (NUM_BUCKETS - 1) as u64 {
        let decade = (i - subs) / subs;
        let sub = (i - subs) % subs;
        let pow = u64::from(FIRST_POW) + decade;
        (1u64 << pow) + ((sub + 1) << (pow - u64::from(SUB_SHIFT)))
    } else {
        u64::MAX
    }
}

/// A log-linear bucketed histogram of durations.
///
/// Values are recorded in nanoseconds into buckets that subdivide each
/// power-of-two decade into [`SUBS` = 8] linear sub-buckets, spanning
/// ~1 µs to ~69 s with ≤ 12.5 % relative quantile error — the classic
/// HDR layout, hand-rolled. Recording is two relaxed atomic adds; all
/// aggregation happens at snapshot time.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0u64; NUM_BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records a raw nanosecond value.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records a duration.
    pub fn record_duration(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed))
    }

    /// A point-in-time copy for quantile math and exposition.
    ///
    /// Concurrent recording makes the snapshot *approximately*
    /// consistent (count/sum/buckets are read one after another); for
    /// scrape-style consumers that is the standard contract.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Observation count.
    pub count: u64,
    /// Sum of observations, in nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Sum of observations as a duration.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns)
    }

    /// The value at quantile `q` in `[0, 1]`, as the upper bound of the
    /// bucket containing that rank (≤ 12.5 % relative error inside the
    /// covered range). Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let ns = bucket_upper_ns(i);
                return Duration::from_nanos(if ns == u64::MAX { self.sum_ns } else { ns });
            }
        }
        Duration::from_nanos(self.sum_ns) // unreachable if count matches buckets
    }

    /// Median.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(upper_bound_ns, cumulative_count)` pairs,
    /// ascending — the shape Prometheus exposition and the bench JSON
    /// both want. The final pair is the total count with `u64::MAX` as
    /// its bound (the `+Inf` bucket) whenever any value was recorded.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                cumulative += c;
                out.push((bucket_upper_ns(i), cumulative));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotonic_and_consistent() {
        let mut prev = 0u64;
        for i in 0..NUM_BUCKETS {
            let upper = bucket_upper_ns(i);
            assert!(upper > prev, "bucket {i}: {upper} <= {prev}");
            if upper != u64::MAX {
                // A value exactly at the upper bound belongs to the next
                // bucket; one below belongs here.
                assert_eq!(bucket_index(upper - 1), i, "upper-1 of bucket {i}");
                assert!(bucket_index(upper) > i, "upper of bucket {i}");
            }
            prev = upper;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // For values in the log-linear body, the bucket's upper bound
        // overestimates by at most 1/SUBS.
        for v in [1_500u64, 10_000, 123_456, 5_000_000, 1 << 30, (1 << 36) - 1] {
            let upper = bucket_upper_ns(bucket_index(v));
            assert!(upper >= v);
            assert!(
                (upper - v) as f64 / v as f64 <= 1.0 / SUBS as f64 + 1e-9,
                "v={v} upper={upper}"
            );
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn histogram_count_sum_quantiles() {
        let h = Histogram::new();
        for ms in 1..=100u64 {
            h.record_duration(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let snap = h.snapshot();
        assert_eq!(snap.sum(), Duration::from_millis(5050));
        let tolerance = 1.0 + 1.0 / SUBS as f64 + 1e-9;
        for (q, exact_ms) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let got = snap.quantile(q).as_secs_f64() * 1e3;
            assert!(
                got >= exact_ms && got <= exact_ms * tolerance,
                "q={q}: got {got} ms, exact {exact_ms} ms"
            );
        }
        assert_eq!(snap.p50(), snap.quantile(0.5));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.99), Duration::ZERO);
        assert!(h.snapshot().cumulative_buckets().is_empty());
    }

    #[test]
    fn tiny_and_huge_values_land_in_edge_buckets() {
        let h = Histogram::new();
        h.record_ns(3); // below 1 µs: linear range
        h.record_duration(Duration::from_secs(600)); // above 69 s: overflow
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        let buckets = snap.cumulative_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1, 1);
        assert_eq!(buckets[1], (u64::MAX, 2), "overflow bucket is +Inf");
    }

    #[test]
    fn cumulative_buckets_accumulate() {
        let h = Histogram::new();
        for _ in 0..3 {
            h.record_duration(Duration::from_micros(10));
        }
        for _ in 0..2 {
            h.record_duration(Duration::from_millis(10));
        }
        let buckets = h.snapshot().cumulative_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].1, 3);
        assert_eq!(buckets[1].1, 5, "cumulative, not per-bucket");
        assert!(buckets[0].0 < buckets[1].0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_ns(i * 997);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        let snap = h.snapshot();
        assert_eq!(snap.cumulative_buckets().last().unwrap().1, 4000);
    }
}
