//! Phase spans and events: the structured-tracing half of the crate.
//!
//! A [`Tracer`] stamps monotonic timestamps (nanoseconds since its own
//! epoch) onto [`SpanRecord`]s and [`EventRecord`]s and hands them to a
//! pluggable [`Collector`]. Spans carry the paper's
//! phase taxonomy ([`Phase`]) plus optional session and batch ids, so a
//! networked run can be decomposed into exactly the four components the
//! paper's figures plot — see `pps-protocol`'s span→`RunReport` bridge.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::clock::{real_clock, SharedClock};
use crate::collect::Collector;
use crate::context::TraceContext;

/// The paper's runtime decomposition, plus the offline phase its §3.3
/// preprocessing moves work into.
///
/// Every figure in the paper plots some subset of the four *online*
/// labels; [`Phase::ONLINE`] lists them in presentation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Client-side index encryption / preparation (the paper's client
    /// encryption time).
    ClientEncrypt,
    /// Time on the wire. For a networked client this is measured as the
    /// time blocked in transport calls, which necessarily *includes* the
    /// server's compute while awaiting the product — the client cannot
    /// see across the wire. Server-side spans carry the compute
    /// separately as [`Phase::ServerCompute`].
    Comm,
    /// Server homomorphic-product time.
    ServerCompute,
    /// Client product decryption (constant in `n`).
    ClientDecrypt,
    /// Offline preprocessing (§3.3 pools) — excluded from the paper's
    /// online totals.
    Offline,
}

impl Phase {
    /// The four online phases, in the order the paper's figures stack
    /// them.
    pub const ONLINE: [Phase; 4] = [
        Phase::ClientEncrypt,
        Phase::Comm,
        Phase::ServerCompute,
        Phase::ClientDecrypt,
    ];

    /// Stable snake_case label, used as the `phase` metric label and in
    /// JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::ClientEncrypt => "client_encrypt",
            Phase::Comm => "comm",
            Phase::ServerCompute => "server_compute",
            Phase::ClientDecrypt => "client_decrypt",
            Phase::Offline => "offline",
        }
    }

    /// The inverse of [`Phase::label`].
    pub fn from_label(label: &str) -> Option<Phase> {
        match label {
            "client_encrypt" => Some(Phase::ClientEncrypt),
            "comm" => Some(Phase::Comm),
            "server_compute" => Some(Phase::ServerCompute),
            "client_decrypt" => Some(Phase::ClientDecrypt),
            "offline" => Some(Phase::Offline),
            _ => None,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One completed span: a named interval on the tracer's monotonic clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// What the span measures (e.g. `encrypt_batch`, `session`).
    pub name: String,
    /// Phase classification, when the span maps onto the paper's
    /// decomposition.
    pub phase: Option<Phase>,
    /// Session id (server accept order, or a caller-chosen client id).
    pub session: Option<u64>,
    /// Batch ordinal within the session, for per-batch spans.
    pub batch: Option<u64>,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// End, in nanoseconds since the tracer's epoch.
    pub end_ns: u64,
    /// Distributed trace identity, when the span belongs to a traced
    /// query (PROTOCOL.md §9.4).
    pub trace: Option<TraceContext>,
}

impl SpanRecord {
    /// The span's duration.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_ns.saturating_sub(self.start_ns))
    }

    /// This record as a JSON object (one line of a JSONL trace). The
    /// `trace_id`/`parent_span_id` fields appear only on traced
    /// records, so untraced output is byte-identical to earlier
    /// revisions.
    pub fn to_json(&self) -> crate::json::JsonValue {
        let v = crate::json::JsonValue::object()
            .field("kind", "span")
            .field("name", self.name.as_str())
            .field("phase", self.phase.map(Phase::label))
            .field("session", self.session)
            .field("batch", self.batch)
            .field("start_ns", self.start_ns)
            .field("end_ns", self.end_ns);
        match self.trace {
            Some(ctx) => v
                .field("trace_id", ctx.trace_id_hex())
                .field("parent_span_id", ctx.parent_span_id),
            None => v,
        }
    }
}

/// One instantaneous event (a refusal, an eviction, a retry backoff…).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name (e.g. `session_refused`, `retry_backoff`).
    pub name: String,
    /// Session id, when the event belongs to one.
    pub session: Option<u64>,
    /// Timestamp, in nanoseconds since the tracer's epoch.
    pub at_ns: u64,
    /// Free-form detail (error text, backoff duration…); empty when the
    /// name says it all.
    pub detail: String,
    /// Distributed trace identity, when the event belongs to a traced
    /// query (PROTOCOL.md §9.4).
    pub trace: Option<TraceContext>,
}

impl EventRecord {
    /// This record as a JSON object (one line of a JSONL trace). As
    /// with spans, the trace fields appear only on traced records.
    pub fn to_json(&self) -> crate::json::JsonValue {
        let v = crate::json::JsonValue::object()
            .field("kind", "event")
            .field("name", self.name.as_str())
            .field("session", self.session)
            .field("at_ns", self.at_ns)
            .field("detail", self.detail.as_str());
        match self.trace {
            Some(ctx) => v
                .field("trace_id", ctx.trace_id_hex())
                .field("parent_span_id", ctx.parent_span_id),
            None => v,
        }
    }
}

/// Stamps spans and events against one monotonic epoch and forwards them
/// to a [`Collector`]. Cheap to clone; clones share the epoch, so their
/// timestamps are mutually comparable.
///
/// A tracer may carry a [`TraceContext`]: every record it emits that
/// does not already have one is stamped with it. Per-connection /
/// per-query scopes derive a context-carrying clone with
/// [`Tracer::with_context`]; the clone shares the epoch and collector.
#[derive(Clone)]
pub struct Tracer {
    epoch: Instant,
    clock: SharedClock,
    collector: Arc<dyn Collector>,
    context: Option<TraceContext>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Tracer {
    /// A tracer emitting into `collector`, with its epoch at "now".
    pub fn new(collector: Arc<dyn Collector>) -> Self {
        Self::with_clock(collector, real_clock())
    }

    /// A tracer whose timestamps come from `clock` instead of the wall
    /// clock — the deterministic simulator stamps spans in *virtual*
    /// time this way, so a simulated 56 Kbps transfer shows its simulated
    /// minutes, not the microseconds the host spent computing it.
    pub fn with_clock(collector: Arc<dyn Collector>, clock: SharedClock) -> Self {
        Tracer {
            epoch: clock.now(),
            clock,
            collector,
            context: None,
        }
    }

    /// A clone of this tracer that stamps `context` onto every record
    /// it emits (records that already carry a context keep theirs).
    /// Shares the epoch, so timestamps stay mutually comparable.
    #[must_use]
    pub fn with_context(&self, context: TraceContext) -> Tracer {
        Tracer {
            epoch: self.epoch,
            clock: Arc::clone(&self.clock),
            collector: Arc::clone(&self.collector),
            context: Some(context),
        }
    }

    /// The context this tracer stamps, if any.
    pub fn context(&self) -> Option<TraceContext> {
        self.context
    }

    /// A tracer that drops everything (zero-cost instrumentation
    /// default).
    pub fn disabled() -> Self {
        Tracer::new(Arc::new(crate::collect::NullCollector))
    }

    /// Nanoseconds elapsed since this tracer's epoch, measured on its
    /// clock (wall time by default, virtual time under a simulator).
    pub fn now_ns(&self) -> u64 {
        let elapsed = self.clock.now().duration_since(self.epoch);
        u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
    }

    /// Starts building a span; call [`SpanBuilder::start`] to begin
    /// timing.
    pub fn span(&self, name: &str) -> SpanBuilder<'_> {
        SpanBuilder {
            tracer: self,
            name: name.to_string(),
            phase: None,
            session: None,
            batch: None,
            trace: None,
        }
    }

    /// Records an instantaneous event.
    pub fn event(&self, name: &str, session: Option<u64>, detail: impl Into<String>) {
        self.collector.record_event(EventRecord {
            name: name.to_string(),
            session,
            at_ns: self.now_ns(),
            detail: detail.into(),
            trace: self.context,
        });
    }

    /// Records a fully-formed span (for callers that measured the
    /// interval themselves). A record without a trace context inherits
    /// this tracer's, when it has one.
    pub fn record_span(&self, mut record: SpanRecord) {
        if record.trace.is_none() {
            record.trace = self.context;
        }
        self.collector.record_span(record);
    }

    /// Records a span of `duration` ending "now" — for phases measured
    /// as accumulated durations rather than contiguous intervals (e.g.
    /// total time blocked on the wire across a whole query).
    pub fn record_phase_total(
        &self,
        name: &str,
        phase: Phase,
        session: Option<u64>,
        duration: Duration,
    ) {
        let end_ns = self.now_ns();
        let dur_ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        self.record_span(SpanRecord {
            name: name.to_string(),
            phase: Some(phase),
            session,
            batch: None,
            start_ns: end_ns.saturating_sub(dur_ns),
            end_ns,
            trace: None,
        });
    }
}

/// Configures a span before it starts timing.
pub struct SpanBuilder<'t> {
    tracer: &'t Tracer,
    name: String,
    phase: Option<Phase>,
    session: Option<u64>,
    batch: Option<u64>,
    trace: Option<TraceContext>,
}

impl SpanBuilder<'_> {
    /// Tags the span with an explicit trace context (overrides the
    /// tracer's own, if any).
    #[must_use]
    pub fn trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Tags the span with a paper phase.
    #[must_use]
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Tags the span with a session id.
    #[must_use]
    pub fn session(mut self, session: u64) -> Self {
        self.session = Some(session);
        self
    }

    /// Tags the span with a batch ordinal.
    #[must_use]
    pub fn batch(mut self, batch: u64) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Starts the clock. The returned guard records the span when
    /// [`SpanGuard::finish`]ed or dropped.
    pub fn start(self) -> SpanGuard {
        SpanGuard {
            tracer: self.tracer.clone(),
            name: self.name,
            phase: self.phase,
            session: self.session,
            batch: self.batch,
            trace: self.trace,
            start_ns: self.tracer.now_ns(),
            finished: false,
        }
    }
}

/// A running span; records itself on [`SpanGuard::finish`] or drop.
pub struct SpanGuard {
    tracer: Tracer,
    name: String,
    phase: Option<Phase>,
    session: Option<u64>,
    batch: Option<u64>,
    trace: Option<TraceContext>,
    start_ns: u64,
    finished: bool,
}

impl SpanGuard {
    /// Attaches a trace context after the span started — for spans
    /// opened before the first frame reveals the peer's context (the
    /// server's per-session span).
    pub fn set_trace(&mut self, trace: TraceContext) {
        self.trace = Some(trace);
    }

    /// Ends the span now, records it, and returns the record.
    pub fn finish(mut self) -> SpanRecord {
        self.finished = true;
        let record = self.make_record();
        self.tracer.record_span(record.clone());
        record
    }

    fn make_record(&self) -> SpanRecord {
        SpanRecord {
            name: self.name.clone(),
            phase: self.phase,
            session: self.session,
            batch: self.batch,
            start_ns: self.start_ns,
            end_ns: self.tracer.now_ns(),
            trace: self.trace.or(self.tracer.context),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.finished {
            let record = self.make_record();
            self.tracer.record_span(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::RingCollector;

    #[test]
    fn phase_labels_round_trip() {
        for p in Phase::ONLINE.into_iter().chain([Phase::Offline]) {
            assert_eq!(Phase::from_label(p.label()), Some(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(Phase::from_label("bogus"), None);
    }

    #[test]
    fn span_guard_records_on_finish_and_drop() {
        let ring = Arc::new(RingCollector::new(8));
        let tracer = Tracer::new(ring.clone());
        let record = tracer
            .span("a")
            .phase(Phase::ClientEncrypt)
            .session(3)
            .batch(1)
            .start()
            .finish();
        assert_eq!(record.name, "a");
        assert_eq!(record.phase, Some(Phase::ClientEncrypt));
        assert!(record.end_ns >= record.start_ns);
        {
            let _guard = tracer.span("b").start();
        } // drop records
        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "b");
        assert_eq!(spans[1].session, None);
    }

    #[test]
    fn timestamps_are_monotonic_across_clones() {
        let ring = Arc::new(RingCollector::new(8));
        let tracer = Tracer::new(ring);
        let clone = tracer.clone();
        let a = tracer.now_ns();
        std::thread::sleep(Duration::from_millis(2));
        let b = clone.now_ns();
        assert!(b > a, "clones share the epoch");
    }

    #[test]
    fn events_and_phase_totals() {
        let ring = Arc::new(RingCollector::new(8));
        let tracer = Tracer::new(ring.clone());
        tracer.event("refused", Some(1), "at capacity");
        std::thread::sleep(Duration::from_millis(2));
        tracer.record_phase_total("comm_total", Phase::Comm, Some(1), Duration::from_millis(1));
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].detail, "at capacity");
        let spans = ring.spans();
        assert_eq!(spans.len(), 1);
        let d = spans[0].duration();
        assert!(d >= Duration::from_micros(900) && d <= Duration::from_micros(1100));
    }

    #[test]
    fn records_serialize_to_json() {
        let s = SpanRecord {
            name: "x".into(),
            phase: Some(Phase::Comm),
            session: Some(2),
            batch: None,
            start_ns: 10,
            end_ns: 30,
            trace: None,
        };
        assert_eq!(
            s.to_json().render(),
            r#"{"kind":"span","name":"x","phase":"comm","session":2,"batch":null,"start_ns":10,"end_ns":30}"#,
            "untraced output stays byte-identical"
        );
        assert_eq!(s.duration(), Duration::from_nanos(20));
        let e = EventRecord {
            name: "ev".into(),
            session: None,
            at_ns: 5,
            detail: String::new(),
            trace: None,
        };
        assert!(e.to_json().render().contains(r#""kind":"event""#));
    }

    #[test]
    fn traced_records_carry_context_fields() {
        let ctx = TraceContext::new(0xabc, 9);
        let s = SpanRecord {
            name: "x".into(),
            phase: None,
            session: None,
            batch: None,
            start_ns: 1,
            end_ns: 2,
            trace: Some(ctx),
        };
        let json = s.to_json().render();
        assert!(json.contains(&format!(r#""trace_id":"{}""#, ctx.trace_id_hex())));
        assert!(json.contains(r#""parent_span_id":9"#));
    }

    #[test]
    fn tracer_context_stamps_records() {
        let ring = Arc::new(RingCollector::new(8));
        let ctx = TraceContext::new(7, 1);
        let tracer = Tracer::new(ring.clone()).with_context(ctx);
        assert_eq!(tracer.context(), Some(ctx));
        tracer.span("s").start().finish();
        tracer.event("e", None, "");
        tracer.record_phase_total("t", Phase::Comm, None, Duration::from_micros(1));
        let spans = ring.spans();
        assert!(spans.iter().all(|s| s.trace == Some(ctx)));
        assert_eq!(ring.events()[0].trace, Some(ctx));
        // Explicit per-span context wins over the tracer's.
        let other = TraceContext::new(8, 2);
        let rec = tracer.span("o").trace(other).start().finish();
        assert_eq!(rec.trace, Some(other));
    }

    #[test]
    fn set_trace_attaches_late_context() {
        let ring = Arc::new(RingCollector::new(8));
        let tracer = Tracer::new(ring.clone());
        let mut guard = tracer.span("session").start();
        guard.set_trace(TraceContext::new(5, 0));
        drop(guard);
        assert_eq!(ring.spans()[0].trace, Some(TraceContext::new(5, 0)));
    }
}
