//! Canonical metric names shared by every instrumented layer.
//!
//! All names follow the Prometheus convention: a `pps_` namespace,
//! `_total` suffix on counters, `_seconds` suffix on duration
//! histograms, and labels reserved for low-cardinality dimensions (the
//! only label in use is `phase`). Centralizing them here keeps the
//! transport, crypto, protocol, CLI, and bench layers agreeing on what
//! each series means — and gives PROTOCOL.md §9 a single source of
//! truth to document.

/// Per-phase runtime histogram; labelled `phase` with one of
/// [`Phase::label`](crate::Phase::label)'s values. This is the
/// continuously-scraped analogue of `RunReport`'s four components.
pub const PHASE_DURATION_SECONDS: &str = "pps_phase_duration_seconds";

/// Frames written to the wire.
pub const WIRE_FRAMES_SENT_TOTAL: &str = "pps_wire_frames_sent_total";
/// Payload bytes written to the wire (frame bodies, excluding headers).
pub const WIRE_BYTES_SENT_TOTAL: &str = "pps_wire_bytes_sent_total";
/// Frames read from the wire.
pub const WIRE_FRAMES_RECEIVED_TOTAL: &str = "pps_wire_frames_received_total";
/// Payload bytes read from the wire.
pub const WIRE_BYTES_RECEIVED_TOTAL: &str = "pps_wire_bytes_received_total";
/// Read/write operations that hit a timeout or an expired deadline.
pub const WIRE_TIMEOUTS_TOTAL: &str = "pps_wire_timeouts_total";

/// Sessions admitted by the server (accept succeeded, admission passed).
pub const SESSIONS_ACCEPTED_TOTAL: &str = "pps_sessions_accepted_total";
/// Sessions that ran the protocol to completion.
pub const SESSIONS_COMPLETED_TOTAL: &str = "pps_sessions_completed_total";
/// Sessions that ended in a protocol error other than eviction.
pub const SESSIONS_FAILED_TOTAL: &str = "pps_sessions_failed_total";
/// Connections refused by admission control before the protocol began.
pub const SESSIONS_REFUSED_TOTAL: &str = "pps_sessions_refused_total";
/// Sessions evicted for exceeding their deadline (slow-loris defence).
pub const SESSIONS_EVICTED_TOTAL: &str = "pps_sessions_evicted_total";
/// Errors from `accept()` itself (no session existed yet).
pub const ACCEPT_ERRORS_TOTAL: &str = "pps_accept_errors_total";
/// Sessions that continued from a stored checkpoint after the client
/// reconnected with `Resume`.
pub const SESSIONS_RESUMED_TOTAL: &str = "pps_sessions_resumed_total";
/// Sessions whose thread panicked; the panic was contained by the
/// runtime's `catch_unwind` boundary.
pub const SESSIONS_PANICKED_TOTAL: &str = "pps_sessions_panicked_total";
/// Fold checkpoints dropped from the resumption table by capacity
/// pressure or TTL expiry (clean completions are not counted).
pub const CHECKPOINTS_EVICTED_TOTAL: &str = "pps_checkpoints_evicted_total";
/// Sessions currently being served.
pub const SESSIONS_ACTIVE: &str = "pps_sessions_active";
/// Connections currently parked in the bounded admission queue.
pub const SESSIONS_QUEUED: &str = "pps_sessions_queued";
/// Time connections spent in the admission queue before being admitted,
/// evicted, or dropped by shutdown.
pub const QUEUE_WAIT_SECONDS: &str = "pps_queue_wait_seconds";
/// Event-engine workers currently executing a protocol step.
pub const WORKERS_BUSY: &str = "pps_workers_busy";
/// End-to-end duration of completed sessions.
pub const SESSION_SECONDS: &str = "pps_session_seconds";

/// Client-side query attempts, including the first (so a clean run of
/// `n` queries records exactly `n`).
pub const RETRY_ATTEMPTS_TOTAL: &str = "pps_retry_attempts_total";
/// Attempts that failed with a retryable transport error.
pub const RETRY_FAILURES_TOTAL: &str = "pps_retry_failures_total";

/// Shard legs launched by the fan-out engine (one per shard per query,
/// so a clean `k`-shard query records exactly `k`).
pub const SHARD_LEGS_TOTAL: &str = "pps_shard_legs_total";
/// Shard-leg attempts that continued from a surviving server checkpoint
/// instead of re-issuing the leg's whole query.
pub const SHARD_RESUMES_TOTAL: &str = "pps_shard_resumes_total";

/// Server-side fold (homomorphic accumulation) time per batch.
pub const FOLD_SECONDS: &str = "pps_fold_seconds";

/// Multi-exponentiation fold plans built from a database's exponents
/// (one per distinct database reaching the plan cache).
pub const FOLD_PLAN_BUILDS_TOTAL: &str = "pps_fold_plan_builds_total";
/// Plan-cache lookups served by an already-built fold plan.
pub const FOLD_PLAN_HITS_TOTAL: &str = "pps_fold_plan_hits_total";
/// Duration of fold-plan builds (digit decomposition of every `x_i`).
pub const FOLD_PLAN_BUILD_SECONDS: &str = "pps_fold_plan_build_seconds";
/// Bytes currently held by cached fold-plan digit tables.
pub const FOLD_PLAN_BYTES: &str = "pps_fold_plan_bytes";

/// Pool takes served from precomputed ciphertexts.
pub const POOL_HITS_TOTAL: &str = "pps_pool_hits_total";
/// Pool takes that fell back to an on-demand encryption.
pub const POOL_MISSES_TOTAL: &str = "pps_pool_misses_total";
/// Duration of pool fill operations (sequential or parallel).
pub const POOL_FILL_SECONDS: &str = "pps_pool_fill_seconds";

/// Duration of one worker chunk inside a parallel encrypt.
pub const ENCRYPT_CHUNK_SECONDS: &str = "pps_encrypt_chunk_seconds";

/// Info-style gauge, always `1`, whose labels identify the build: the
/// crate `version` and the protocol frame `magic` this binary speaks.
/// Scrapes join on it to correlate metric changes with deploys.
pub const BUILD_INFO: &str = "pps_build_info";

/// Whole traces evicted from the server's
/// [`TraceBuffer`](crate::TraceBuffer) (oldest-first) to admit newer
/// traces.
pub const TRACE_TRACES_EVICTED_TOTAL: &str = "pps_trace_traces_evicted_total";
/// Records dropped because their trace hit the per-trace record cap.
pub const TRACE_RECORDS_DROPPED_TOTAL: &str = "pps_trace_records_dropped_total";
/// Sessions whose end-to-end duration crossed the configured
/// slow-query threshold (see `with_slow_query_threshold`).
pub const SLOW_QUERIES_TOTAL: &str = "pps_slow_queries_total";
