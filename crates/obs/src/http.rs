//! A minimal std-only HTTP/1.1 server exposing a [`Registry`].
//!
//! Three routes, all read-only:
//!
//! * `GET /metrics` — Prometheus text exposition format 0.0.4
//! * `GET /healthz` — JSON snapshot (uptime, counters, gauges,
//!   histogram summaries)
//! * `GET /trace/<id>` — one trace's records as JSONL, when the server
//!   was started with a [`TraceBuffer`]
//!   ([`MetricsServer::start_with_traces`]); 404 for unknown ids and
//!   on servers without a buffer
//!
//! This is intentionally not a general web server: it parses only the
//! request line, ignores headers and bodies, answers one request per
//! connection (`Connection: close`), and enforces a short read timeout
//! so a stalled scraper cannot pin a handler thread.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::context::TraceContext;
use crate::registry::Registry;
use crate::trace_buffer::TraceBuffer;

/// How long a handler waits for a request line before dropping the
/// connection.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics endpoint. Dropping it without calling
/// [`MetricsServer::stop`] leaves the accept thread running until
/// process exit — call `stop` for a clean shutdown.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9090"`, port 0 for ephemeral) and
    /// starts serving `registry` on a background accept thread.
    pub fn start(addr: impl ToSocketAddrs, registry: Arc<Registry>) -> io::Result<Self> {
        Self::start_inner(addr, registry, None)
    }

    /// Like [`MetricsServer::start`], additionally serving `traces`
    /// under `GET /trace/<id>`.
    pub fn start_with_traces(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        traces: Arc<TraceBuffer>,
    ) -> io::Result<Self> {
        Self::start_inner(addr, registry, Some(traces))
    }

    fn start_inner(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        traces: Option<Arc<TraceBuffer>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = thread::Builder::new()
            .name("pps-metrics".into())
            .spawn(move || accept_loop(listener, registry, traces, accept_stop))
            .expect("spawn metrics accept thread");
        Ok(MetricsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. In-flight handler
    /// threads finish their single response and exit on their own.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    traces: Option<Arc<TraceBuffer>>,
    stop: Arc<AtomicBool>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let registry = Arc::clone(&registry);
        let traces = traces.clone();
        // Detached: each handler writes one response and exits.
        let _ = thread::Builder::new()
            .name("pps-metrics-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &registry, traces.as_deref());
            });
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    traces: Option<&TraceBuffer>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let mut stream = reader.into_inner();
    let (status, content_type, body) = route(method, path, registry, traces);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn route(
    method: &str,
    path: &str,
    registry: &Registry,
    traces: Option<&TraceBuffer>,
) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    // Scrapers may append query strings; route on the path alone.
    let path = path.split('?').next().unwrap_or(path);
    if let Some(id_hex) = path.strip_prefix("/trace/") {
        let body =
            TraceContext::parse_trace_id(id_hex).and_then(|id| traces.and_then(|t| t.to_jsonl(id)));
        return match body {
            Some(body) => ("200 OK", "application/jsonl", body),
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "unknown trace id\n".into(),
            ),
        };
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_prometheus(),
        ),
        "/healthz" => (
            "200 OK",
            "application/json",
            registry.healthz_json().render(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /healthz, or /trace/<id>\n".into(),
        ),
    }
}

/// Issues one blocking `GET path` against `addr` and returns
/// `(status_line, body)`. Std-only; used by the CLI's trace mode and
/// the integration tests — real deployments point Prometheus at the
/// endpoint instead.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(READ_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut body = String::new();
    // Connection: close — read to EOF.
    io::Read::read_to_string(&mut reader, &mut body)?;
    Ok((status_line.trim_end().to_string(), body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration as StdDuration;

    fn server_with_data() -> (MetricsServer, Arc<Registry>) {
        let registry = Arc::new(Registry::new());
        registry.counter("pps_http_test_total", "t").add(5);
        registry
            .histogram("pps_http_test_seconds", "t")
            .record_duration(StdDuration::from_millis(2));
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        (server, registry)
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (server, registry) = server_with_data();
        let (status, body) = get(server.addr(), "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("pps_http_test_total 5"));
        assert!(body.contains(r#"pps_http_test_seconds_bucket{le="+Inf"} 1"#));
        assert_eq!(body, registry.render_prometheus());
        server.stop();
    }

    #[test]
    fn healthz_endpoint_serves_json() {
        let (server, _registry) = server_with_data();
        let (status, body) = get(server.addr(), "/healthz").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.starts_with('{') && body.ends_with('}'));
        assert!(body.contains(r#""pps_http_test_total":5"#));
        server.stop();
    }

    #[test]
    fn unknown_path_is_404_and_server_survives() {
        let (server, _registry) = server_with_data();
        let (status, _) = get(server.addr(), "/nope").unwrap();
        assert!(status.contains("404"), "{status}");
        let (status, _) = get(server.addr(), "/metrics?ts=1").unwrap();
        assert!(status.contains("200"), "query strings ignored: {status}");
        server.stop();
    }

    #[test]
    fn trace_endpoint_serves_jsonl_per_trace() {
        use crate::collect::Collector;
        use crate::span::{SpanRecord, Tracer};

        let registry = Arc::new(Registry::new());
        let traces = Arc::new(TraceBuffer::default());
        let ctx = TraceContext::new(0xfeed, 3);
        let tracer = Tracer::new(Arc::clone(&traces) as Arc<dyn Collector>).with_context(ctx);
        tracer.span("fold").session(1).start().finish();
        tracer.record_span(SpanRecord {
            name: "session".into(),
            phase: None,
            session: Some(1),
            batch: None,
            start_ns: 0,
            end_ns: 99,
            trace: None, // stamped by the tracer's context
        });
        let server =
            MetricsServer::start_with_traces("127.0.0.1:0", registry, Arc::clone(&traces)).unwrap();
        let path = format!("/trace/{}", ctx.trace_id_hex());
        let (status, body) = get(server.addr(), &path).unwrap();
        assert!(status.contains("200"), "{status}");
        assert_eq!(body.lines().count(), 2);
        assert!(body.contains(&ctx.trace_id_hex()));
        let (status, _) = get(server.addr(), "/trace/00000000000000000000000000000bad").unwrap();
        assert!(status.contains("404"), "unknown id: {status}");
        let (status, _) = get(server.addr(), "/trace/not-hex").unwrap();
        assert!(status.contains("404"), "malformed id: {status}");
        server.stop();

        // A server without a buffer 404s the whole route.
        let bare = MetricsServer::start("127.0.0.1:0", Arc::new(Registry::new())).unwrap();
        let (status, _) = get(bare.addr(), &path).unwrap();
        assert!(status.contains("404"), "no buffer: {status}");
        bare.stop();
    }

    #[test]
    fn stop_joins_cleanly_and_port_closes() {
        let (server, _registry) = server_with_data();
        let addr = server.addr();
        server.stop();
        // After stop, new scrapes must fail (connect refused) or at
        // least never serve metrics.
        if let Ok((_, body)) = get(addr, "/metrics") {
            assert!(body.is_empty(), "stopped server answered a scrape");
        }
    }
}
