//! Injectable time sources: the [`Clock`] trait with a real
//! implementation ([`RealClock`]) and a virtual one ([`VirtualClock`]).
//!
//! Everything in the workspace that *waits* — transport receive
//! deadlines, retry backoff sleeps, session TTLs, orchestrator deadline
//! sweeps — takes its notion of "now" (and its ability to sleep) from a
//! [`SharedClock`] instead of calling `Instant::now()` /
//! `thread::sleep` directly. Production code keeps the [`RealClock`]
//! default and behaves exactly as before; the deterministic simulator
//! (`pps-sim`) and wall-time-sensitive tests inject a [`VirtualClock`]
//! whose time advances only when told to, so a thousand-client chaos
//! campaign with minutes of simulated backoff runs in milliseconds and
//! replays bit-identically from a seed.
//!
//! # Why `Instant` and not a numeric tick
//!
//! A virtual clock still hands out real [`Instant`] values: it captures
//! one anchor `Instant` at construction and returns `anchor + offset`
//! where `offset` is the virtual elapsed time. All existing deadline
//! arithmetic (`+ Duration`, `saturating_duration_since`, comparisons)
//! works unchanged, provided the code under a virtual clock never mixes
//! in a raw `Instant::now()` — which is exactly the discipline the
//! [`Clock`] trait enforces at the call sites.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A source of monotonic time and the ability to wait on it.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current instant according to this clock.
    fn now(&self) -> Instant;

    /// Blocks (really or virtually) for `d`. A [`RealClock`] calls
    /// `thread::sleep`; a [`VirtualClock`] advances its own time and
    /// returns immediately.
    fn sleep(&self, d: Duration);

    /// Whether this clock's time passes without the host's wall clock —
    /// `true` for virtual clocks. Code that must bound a *real* wait
    /// (e.g. a condvar timeout computed against a deadline) can use this
    /// to avoid blocking a thread on time that will never pass by
    /// itself.
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Shared handle to a [`Clock`]; cheap to clone and store in configs.
pub type SharedClock = Arc<dyn Clock>;

/// The production clock: `Instant::now()` and `thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealClock;

impl Clock for RealClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// The process-wide [`RealClock`] handle, for defaulting config fields
/// without allocating a fresh `Arc` each time.
pub fn real_clock() -> SharedClock {
    static REAL: OnceLock<SharedClock> = OnceLock::new();
    Arc::clone(REAL.get_or_init(|| Arc::new(RealClock)))
}

/// A deterministic clock whose time advances only via
/// [`VirtualClock::advance`] (or its own [`Clock::sleep`]).
///
/// Handed out as an `Arc<VirtualClock>`, one instance can be shared by
/// every component of a simulation — client backoff, server TTLs,
/// deadline sweeps — so a single `advance` moves the whole world
/// forward coherently.
pub struct VirtualClock {
    anchor: Instant,
    offset_ns: AtomicU64,
    /// Total virtual time slept via [`Clock::sleep`], for tests that
    /// assert backoff schedules without burning wall time.
    slept_ns: AtomicU64,
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualClock")
            .field("elapsed", &self.elapsed())
            .finish()
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualClock {
    /// A virtual clock at elapsed time zero.
    pub fn new() -> Self {
        VirtualClock {
            anchor: Instant::now(),
            offset_ns: AtomicU64::new(0),
            slept_ns: AtomicU64::new(0),
        }
    }

    /// Virtual time elapsed since construction.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.offset_ns.load(Ordering::SeqCst))
    }

    /// Advances virtual time by `d`.
    pub fn advance(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.offset_ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Advances virtual time to `elapsed` since construction (no-op if
    /// time is already past it — virtual time is monotone too).
    pub fn advance_to(&self, elapsed: Duration) {
        let target = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.offset_ns.fetch_max(target, Ordering::SeqCst);
    }

    /// Total virtual time spent in [`Clock::sleep`] on this clock.
    pub fn slept(&self) -> Duration {
        Duration::from_nanos(self.slept_ns.load(Ordering::SeqCst))
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Instant {
        self.anchor + self.elapsed()
    }

    fn sleep(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.slept_ns.fetch_add(ns, Ordering::SeqCst);
        self.advance(d);
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_tracks_wall_time() {
        let c = RealClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn real_clock_handle_is_shared() {
        assert!(Arc::ptr_eq(&real_clock(), &real_clock()));
    }

    #[test]
    fn virtual_clock_advances_only_on_demand() {
        let c = VirtualClock::new();
        let t0 = c.now();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(c.now(), t0, "wall time must not leak in");
        c.advance(Duration::from_secs(5));
        assert_eq!(c.now() - t0, Duration::from_secs(5));
        assert!(c.is_virtual());
    }

    #[test]
    fn virtual_sleep_is_instant_and_recorded() {
        let c = VirtualClock::new();
        let wall = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(5), "no real wait");
        assert_eq!(c.slept(), Duration::from_secs(3600));
        assert_eq!(c.elapsed(), Duration::from_secs(3600));
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = VirtualClock::new();
        c.advance_to(Duration::from_millis(10));
        c.advance_to(Duration::from_millis(5));
        assert_eq!(c.elapsed(), Duration::from_millis(10));
        c.advance_to(Duration::from_millis(20));
        assert_eq!(c.elapsed(), Duration::from_millis(20));
    }

    #[test]
    fn deadline_arithmetic_works_on_virtual_instants() {
        let c = VirtualClock::new();
        let deadline = c.now() + Duration::from_millis(100);
        assert!(c.now() < deadline);
        c.advance(Duration::from_millis(100));
        assert!(c.now() >= deadline);
        assert_eq!(deadline.saturating_duration_since(c.now()), Duration::ZERO);
    }
}
