//! Server-side per-trace record store backing `GET /trace/<id>`.
//!
//! A [`TraceBuffer`] is a [`Collector`] that keeps only *traced*
//! records (those stamped with a [`TraceContext`], i.e. belonging to a
//! remote caller's query) and groups them by `trace_id`, so the obs
//! HTTP endpoint can hand a client exactly the spans its query caused
//! and nothing else. Untraced records — the server's own housekeeping —
//! pass through untouched (pair it with a ring via
//! [`TeeCollector`](crate::TeeCollector) if those are wanted too).
//!
//! Memory is bounded on two axes, both fixed at construction:
//!
//! * at most `max_traces` distinct traces are held; starting a new one
//!   beyond that evicts the *oldest-created* trace wholesale (queries
//!   are short-lived, so creation order ≈ staleness order, and whole-
//!   trace eviction never serves a half-true timeline);
//! * each trace holds at most `max_records` records; further records
//!   for that trace are counted and dropped (keeping the *earliest*
//!   records, which carry the handshake and phase structure).
//!
//! Both overflow counters are observable so a scrape can tell when a
//! fetched trace might be incomplete.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::collect::{Collector, Record};
use crate::context::TraceContext;
use crate::metrics::Counter;
use crate::span::{EventRecord, SpanRecord};

/// Bounded, trace-id-keyed record store. See the module docs for the
/// eviction policy.
pub struct TraceBuffer {
    max_traces: usize,
    max_records: usize,
    /// Registry mirrors of the internal overflow counts (see
    /// [`TraceBuffer::with_counters`]); `None` keeps them local-only.
    evicted_counter: Option<Arc<Counter>>,
    dropped_counter: Option<Arc<Counter>>,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    /// Creation order, oldest first. Linear scan on insert/lookup —
    /// `max_traces` is small (default 64) and the hot path is one
    /// mutex + one scan of at most that many ids.
    traces: VecDeque<(u128, Vec<Record>)>,
    traces_evicted: u64,
    records_dropped: u64,
}

impl TraceBuffer {
    /// Default bounds: 64 traces × 4096 records.
    pub const DEFAULT_MAX_TRACES: usize = 64;
    /// See [`TraceBuffer::DEFAULT_MAX_TRACES`].
    pub const DEFAULT_MAX_RECORDS: usize = 4096;

    /// A buffer holding at most `max_traces` traces of at most
    /// `max_records` records each (both clamped to a minimum of 1).
    pub fn new(max_traces: usize, max_records: usize) -> Self {
        TraceBuffer {
            max_traces: max_traces.max(1),
            max_records: max_records.max(1),
            evicted_counter: None,
            dropped_counter: None,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Mirrors the overflow counts into registry counters so a metrics
    /// scrape can tell when a fetched trace might be incomplete:
    /// `evicted` tracks whole traces displaced by newer ones, `dropped`
    /// tracks records discarded because their trace was full.
    #[must_use]
    pub fn with_counters(mut self, evicted: Arc<Counter>, dropped: Arc<Counter>) -> Self {
        self.evicted_counter = Some(evicted);
        self.dropped_counter = Some(dropped);
        self
    }

    fn push(&self, trace: Option<TraceContext>, record: Record) {
        let Some(ctx) = trace else { return };
        let mut inner = self.inner.lock().expect("trace buffer lock");
        if let Some((_, records)) = inner.traces.iter_mut().find(|(id, _)| *id == ctx.trace_id) {
            if records.len() < self.max_records {
                records.push(record);
            } else {
                inner.records_dropped += 1;
                if let Some(c) = &self.dropped_counter {
                    c.inc();
                }
            }
            return;
        }
        if inner.traces.len() == self.max_traces {
            inner.traces.pop_front();
            inner.traces_evicted += 1;
            if let Some(c) = &self.evicted_counter {
                c.inc();
            }
        }
        inner.traces.push_back((ctx.trace_id, vec![record]));
    }

    /// The records of `trace_id`, in arrival order; `None` for an
    /// unknown (or evicted) trace.
    pub fn records(&self, trace_id: u128) -> Option<Vec<Record>> {
        self.inner
            .lock()
            .expect("trace buffer lock")
            .traces
            .iter()
            .find(|(id, _)| *id == trace_id)
            .map(|(_, records)| records.clone())
    }

    /// The records of `trace_id` rendered as JSONL (one record per
    /// line, trailing newline) — the `GET /trace/<id>` body.
    pub fn to_jsonl(&self, trace_id: u128) -> Option<String> {
        let records = self.records(trace_id)?;
        let mut out = String::new();
        for record in &records {
            let json = match record {
                Record::Span(s) => s.to_json(),
                Record::Event(e) => e.to_json(),
            };
            out.push_str(&json.render());
            out.push('\n');
        }
        Some(out)
    }

    /// Ids of the currently held traces, oldest first.
    pub fn trace_ids(&self) -> Vec<u128> {
        self.inner
            .lock()
            .expect("trace buffer lock")
            .traces
            .iter()
            .map(|(id, _)| *id)
            .collect()
    }

    /// Whole traces evicted so far to admit newer ones.
    pub fn traces_evicted(&self) -> u64 {
        self.inner.lock().expect("trace buffer lock").traces_evicted
    }

    /// Records dropped so far because their trace hit `max_records`.
    pub fn records_dropped(&self) -> u64 {
        self.inner
            .lock()
            .expect("trace buffer lock")
            .records_dropped
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new(Self::DEFAULT_MAX_TRACES, Self::DEFAULT_MAX_RECORDS)
    }
}

impl Collector for TraceBuffer {
    fn record_span(&self, span: SpanRecord) {
        self.push(span.trace, Record::Span(span));
    }

    fn record_event(&self, event: EventRecord) {
        self.push(event.trace, Record::Event(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    fn traced_span(trace_id: u128, name: &str, start: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            phase: Some(Phase::ServerCompute),
            session: Some(1),
            batch: None,
            start_ns: start,
            end_ns: start + 10,
            trace: Some(TraceContext::new(trace_id, 0)),
        }
    }

    #[test]
    fn groups_by_trace_and_ignores_untraced() {
        let buf = TraceBuffer::new(4, 16);
        buf.record_span(traced_span(1, "a", 0));
        buf.record_span(traced_span(2, "b", 5));
        buf.record_span(traced_span(1, "c", 10));
        buf.record_span(SpanRecord {
            trace: None,
            ..traced_span(0, "housekeeping", 0)
        });
        buf.record_event(EventRecord {
            name: "ev".into(),
            session: None,
            at_ns: 1,
            detail: String::new(),
            trace: Some(TraceContext::new(2, 7)),
        });
        assert_eq!(buf.trace_ids(), vec![1, 2]);
        assert_eq!(buf.records(1).unwrap().len(), 2);
        assert_eq!(buf.records(2).unwrap().len(), 2);
        assert_eq!(buf.records(3), None);
    }

    #[test]
    fn evicts_oldest_trace_and_caps_records() {
        let buf = TraceBuffer::new(2, 2);
        buf.record_span(traced_span(1, "a", 0));
        buf.record_span(traced_span(2, "b", 0));
        buf.record_span(traced_span(3, "c", 0));
        assert_eq!(buf.trace_ids(), vec![2, 3], "trace 1 evicted");
        assert_eq!(buf.traces_evicted(), 1);
        buf.record_span(traced_span(2, "d", 1));
        buf.record_span(traced_span(2, "over", 2));
        assert_eq!(buf.records(2).unwrap().len(), 2, "earliest kept");
        assert_eq!(buf.records_dropped(), 1);
    }

    #[test]
    fn registry_counters_mirror_overflow_counts() {
        let registry = crate::Registry::new();
        let evicted = registry.counter("evicted", "");
        let dropped = registry.counter("dropped", "");
        let buf = TraceBuffer::new(1, 1).with_counters(Arc::clone(&evicted), Arc::clone(&dropped));
        buf.record_span(traced_span(1, "a", 0));
        buf.record_span(traced_span(1, "over", 1)); // trace 1 full
        buf.record_span(traced_span(2, "b", 0)); // evicts trace 1
        assert_eq!(evicted.get(), buf.traces_evicted());
        assert_eq!(dropped.get(), buf.records_dropped());
        assert_eq!(evicted.get(), 1);
        assert_eq!(dropped.get(), 1);
    }

    #[test]
    fn jsonl_rendering_is_line_per_record() {
        let buf = TraceBuffer::default();
        buf.record_span(traced_span(9, "fold", 0));
        buf.record_span(traced_span(9, "session", 20));
        let body = buf.to_jsonl(9).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = crate::json::JsonValue::parse(line).expect("valid JSON line");
            assert_eq!(
                v.get("trace_id").and_then(|t| t.as_str()),
                Some(TraceContext::new(9, 0).trace_id_hex().as_str())
            );
        }
        assert!(body.ends_with('\n'));
        assert_eq!(buf.to_jsonl(1), None);
    }
}
