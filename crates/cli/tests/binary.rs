//! Black-box tests of the compiled `pps` binary: real process spawns,
//! real argv, real sockets.

use std::io::Read;
use std::net::TcpListener;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pps")
}

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pps-bin-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap().to_string();
    drop(l);
    addr
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = Command::new(bin()).arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("serve"));
    assert!(text.contains("query"));
}

#[test]
fn bad_arguments_exit_2() {
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));

    let out = Command::new(bin())
        .args(["query", "--select", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn keygen_writes_a_loadable_key() {
    let dir = temp_dir();
    let key = dir.join("k.bin");
    let out = Command::new(bin())
        .args(["keygen", "--bits", "128", "--out", key.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&key).unwrap();
    assert_eq!(&bytes[..4], b"PSK1");
    assert!(pps_crypto::PaillierSecretKey::keypair_from_bytes(&bytes).is_ok());
}

#[test]
fn serve_and_query_binaries_end_to_end() {
    let dir = temp_dir();
    let data = dir.join("data.txt");
    std::fs::write(&data, "11\n22\n33\n44\n").unwrap();
    let addr = free_addr();

    let mut server = Command::new(bin())
        .args([
            "serve",
            "--data",
            data.to_str().unwrap(),
            "--listen",
            &addr,
            "--max-sessions",
            "1",
            "--fold",
            "multiexp",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    // Wait for the listener, then query with the real client binary.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let query_out = loop {
        let out = Command::new(bin())
            .args([
                "query",
                "--addr",
                &addr,
                "--select",
                "0,3",
                "--key-bits",
                "128",
            ])
            .output()
            .unwrap();
        if out.status.success() {
            break out;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "query never succeeded: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };

    let text = String::from_utf8(query_out.stdout).unwrap();
    assert!(
        text.contains("private sum of 2 selected rows (of 4): 55"),
        "{text}"
    );

    let status = server.wait().unwrap();
    assert!(status.success());
    let mut server_log = String::new();
    server
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut server_log)
        .unwrap();
    assert!(server_log.contains("serving 4 rows"), "{server_log}");
}
