//! `pps` binary entry point: parse, dispatch, exit with the right code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = pps_cli::run(&args, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(e.code);
    }
}
