//! # pps-cli
//!
//! A deployable command-line tool for the private selected-sum protocol
//! over real TCP:
//!
//! ```sh
//! # Terminal 1 — a server over a value file (one u64 per line):
//! pps serve --data salaries.txt --listen 127.0.0.1:7070
//!
//! # Terminal 2 — a private query for rows 1, 4 and 6:
//! pps query --addr 127.0.0.1:7070 --select 1,4,6 --key-bits 512
//!
//! # Key management:
//! pps keygen --bits 2048 --out client.key
//! pps query --addr 127.0.0.1:7070 --select 0,2 --key client.key
//! ```
//!
//! The binary is a thin `main`; everything here is library code so the
//! argument parser, file loader, and both endpoints are unit- and
//! integration-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::net::ToSocketAddrs;
use std::path::Path;
use std::time::Duration;

use pps_crypto::{PaillierKeypair, PaillierSecretKey};
use pps_obs::{names, JsonValue, MetricsServer, Registry, TraceBuffer, TraceContext, Tracer};
use pps_protocol::{
    fetch_trace, run_multiclient, run_multidb, run_multidb_blinded, run_sharded_query,
    run_sharded_query_traced, run_tcp_query_observed, run_tcp_query_with_retry, Admission,
    Database, FoldStrategy, Partition, QueryObs, ResumptionConfig, RunReport, Selection,
    ServeEngine, ServerObs, SessionEvent, SessionLimits, ShardQueryConfig, SumClient,
    TcpQueryConfig, TcpServer, TraceTimeline,
};
use pps_transport::{LinkProfile, RetryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exit-style error for the CLI: message for stderr plus a process code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Parsed command.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// Serve a database over TCP.
    Serve {
        /// Value file path (one u64 per line), or None with `random`.
        data: Option<String>,
        /// Generate this many random 32-bit values instead of a file.
        random: Option<usize>,
        /// Listen address.
        listen: String,
        /// Serve at most this many sessions, then exit (None = forever).
        max_sessions: Option<usize>,
        /// Server fold strategy.
        fold: FoldStrategy,
        /// Cap on simultaneously active sessions (None = unbounded).
        max_concurrent: Option<usize>,
        /// What to do with connections over the `max_concurrent` cap.
        admission: Admission,
        /// Which runtime drives accepted connections.
        engine: ServeEngine,
        /// Event-engine worker-pool size (None = host parallelism,
        /// capped at 8). Ignored by the threaded engine.
        workers: Option<usize>,
        /// Whole-session wall-clock budget in seconds (0 = no limits at
        /// all, None = defaults).
        session_timeout: Option<u64>,
        /// Trigger a graceful shutdown this many seconds after start.
        shutdown_after: Option<u64>,
        /// Serve a Prometheus `/metrics` + `/healthz` endpoint here.
        metrics_addr: Option<String>,
        /// Fold-checkpoint lifetime in seconds (None = default 120).
        resume_ttl: Option<u64>,
        /// Fold-checkpoint table capacity (None = default 1024).
        resume_capacity: Option<usize>,
        /// Serve as a shard worker: require the sharded-query handshake
        /// (PROTOCOL.md §11) before any query, and refuse plaintext
        /// baselines outright, so every partial this worker returns is
        /// blinded.
        shard: bool,
        /// Flag sessions whose wall time reaches this many milliseconds
        /// as slow queries (counter + traced event with the phase
        /// breakdown).
        slow_query_ms: Option<u64>,
    },
    /// Issue one private selected-sum query.
    Query {
        /// Server address.
        addr: String,
        /// Selected row indices.
        select: Vec<usize>,
        /// Everything else.
        opts: QueryOptions,
    },
    /// Generate and store a keypair.
    Keygen {
        /// Modulus size.
        bits: usize,
        /// Output path for the secret key bytes.
        out: String,
    },
    /// Simulate the §3.5 multi-client blinded protocol in process
    /// (Fig. 8 reproduction).
    MultiClient {
        /// Value file path, or None with `random`.
        data: Option<String>,
        /// Generate this many random 32-bit values instead of a file.
        random: Option<usize>,
        /// Number of cooperating clients.
        k: usize,
        /// Key size for the shared ephemeral key.
        key_bits: usize,
    },
    /// Simulate the §3.5 multi-database protocol in process, plain or
    /// blinded.
    MultiDb {
        /// Value file path, or None with `random`.
        data: Option<String>,
        /// Generate this many random 32-bit values instead of a file.
        random: Option<usize>,
        /// Number of horizontal partitions.
        k: usize,
        /// Blind the partial sums with correlated randomness.
        blinded: bool,
        /// Key size for the client's ephemeral key.
        key_bits: usize,
    },
    /// Run one deterministic simulation campaign and render its
    /// invariant verdict (exit 1 on any violation).
    SimRun {
        /// Scenario name from the registry (`pps sim list`).
        scenario: String,
        /// Campaign seed; same (scenario, seed, engine) replays the
        /// campaign bit-identically.
        seed: u64,
        /// Deterministic service-scheduling model.
        engine: pps_sim::SimEngine,
        /// Rescale the scenario's population to roughly this many
        /// clients (None = the registry's full population).
        population: Option<usize>,
    },
    /// List the simulation scenario registry.
    SimList,
    /// Fetch one trace's records from a server's obs endpoint.
    TraceDump {
        /// The server's obs HTTP address (its `--metrics-addr`).
        obs: String,
        /// The trace id, as 1–32 hex digits.
        id: String,
        /// How to render the fetched records.
        format: TraceDumpFormat,
    },
    /// Print usage.
    Help,
}

/// How `pps trace dump` renders the fetched records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceDumpFormat {
    /// The raw `GET /trace/<id>` body: one JSON record per line.
    Jsonl,
    /// A time-ordered human-readable table.
    Pretty,
    /// Chrome trace-event JSON (loadable in Perfetto).
    Chrome,
}

/// How `pps query --trace` renders the per-phase timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// The [`RunReport::to_json`] object, pretty-printed.
    Json,
    /// A human-readable phase table with proportional bars.
    Pretty,
}

/// Knobs for [`run_query`] beyond the address and selection.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOptions {
    /// Key size for an ephemeral key.
    pub key_bits: usize,
    /// Path to a stored secret key (overrides `key_bits`).
    pub key_file: Option<String>,
    /// Batch size for streaming.
    pub batch: usize,
    /// Worker threads for client-side index encryption (1 = sequential
    /// paper-fidelity path; 0 = one per host core).
    pub client_threads: usize,
    /// Extra attempts after a transient transport failure (0 = single
    /// shot).
    pub retries: u32,
    /// Record the paper's phase decomposition and render it.
    pub trace: Option<TraceFormat>,
    /// Shard worker addresses, in partition order. Non-empty switches
    /// the query to the sharded fan-out engine (`--addr` is ignored).
    pub shards: Vec<String>,
    /// The shards' obs HTTP addresses, in the same order as `shards`.
    /// Required for a traced sharded query: the trace assembler fetches
    /// each leg's server-side spans from here.
    pub shard_obs: Vec<String>,
}

impl Default for QueryOptions {
    /// Default key size, batch 100, sequential encryption, single shot,
    /// no trace.
    fn default() -> Self {
        QueryOptions {
            key_bits: pps_crypto::DEFAULT_KEY_BITS,
            key_file: None,
            batch: 100,
            client_threads: 1,
            retries: 0,
            trace: None,
            shards: Vec::new(),
            shard_obs: Vec::new(),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
pps — private selected-sum queries over TCP

USAGE:
  pps serve  --data FILE | --random N   [--listen ADDR] [--max-sessions K]
             [--fold incremental|multiexp|parallel|precomputed]
             [--max-concurrent K] [--admission queue|refuse] [--session-timeout SECS] [--shutdown-after SECS]
             [--engine threaded|event] [--workers W]
             [--metrics-addr HOST:PORT] [--resume-ttl SECS] [--resume-capacity K]
             [--slow-query-ms MS]
  pps shard-serve  (same flags as serve; serves one horizontal partition
             as a shard worker; --fold defaults to precomputed)
  pps query  --addr ADDR | --shards A1,A2,... --select i,j,k [--key-bits B | --key FILE] [--batch SIZE]
             [--client-threads T|auto] [--retries N] [--trace json|pretty]
             [--shard-obs O1,O2,...]
  pps trace dump --obs HOST:PORT --id HEX [--format jsonl|pretty|chrome]
  pps sim run  --scenario NAME [--seed S] [--engine threaded|event]
               [--population N]
  pps sim list
  pps multiclient --data FILE | --random N [--k K] [--key-bits B]
  pps multidb     --data FILE | --random N [--k K] [--blinded] [--key-bits B]
  pps keygen --bits B --out FILE
  pps help

Serve hardening: --max-concurrent caps simultaneously active sessions
(excess connections queue, or are refused with --admission refuse);
--session-timeout bounds each session's wall clock (0 disables every
deadline); --shutdown-after drains and exits gracefully after N seconds.
--fold precomputed digit-decomposes every database row once (~8 bytes
per row) into a plan shared by all sessions, shard legs, and resumes.
--engine event multiplexes every connection over one reactor thread
plus --workers W protocol-step workers (default: host parallelism,
capped at 8) instead of one thread per connection; the wire format is
identical, so clients cannot tell the engines apart.
Serve telemetry: --metrics-addr exposes GET /metrics (Prometheus text
format: session lifecycle counters, wire bytes, per-phase latency
histograms) and GET /healthz (JSON) while the server runs.
Session resumption: a disconnected client that reconnects within
--resume-ttl seconds (default 120) continues from the last acknowledged
batch; --resume-capacity bounds the checkpoint table (default 1024).
Query --retries N resumes from the server's checkpoint when one
survives, and re-issues the whole query up to N extra times on
transient transport failures otherwise, with exponential backoff.
--trace records the paper's four-component phase decomposition of the
query and prints it as JSON or as a timeline table. With --shards it
runs the query *distributed-traced*: a trace id is minted, carried to
every worker inside the wire handshake, and stamped onto each worker's
server-side spans; --shard-obs (one obs address per shard, in order)
lets the client fetch those spans back and merge everything into one
cross-process timeline. --slow-query-ms flags sessions whose wall time
crosses the threshold (counter + traced slow_query event carrying the
phase breakdown); pps trace dump fetches one trace's records from a
server's obs endpoint (jsonl, pretty table, or Chrome trace-event JSON
for Perfetto).
Sharded queries: shard-serve runs a worker that answers only blinded
partial sums (it rejects clients that skip the §11 shard handshake);
query --shards fans one query out over the listed workers — --select
takes global row indices over the concatenated partitions, each leg
retries and resumes independently, and the partials combine to the
exact sum with no worker revealing its share.
multiclient / multidb reproduce the paper's §3.5 simulations in
process: k cooperating clients (or k database partitions, optionally
--blinded) over a modeled gigabit link, verified against the plaintext
oracle.
Simulation campaigns: pps sim run drives a named population-scale
scenario (pps sim list) through the deterministic discrete-event
harness — real protocol state machines over a simulated network with
the paper's two link profiles — and checks the invariant oracle; the
same --scenario/--seed/--engine triple replays any campaign
bit-identically, and every reported violation carries that repro
command. Exit status 1 when any invariant breaks.
";

/// Parses command-line arguments (without the program name).
///
/// # Errors
/// [`CliError`] with usage text for any malformed invocation.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    let mut opts: Vec<(String, Option<String>)> = Vec::new();
    let mut rest: Vec<&String> = it.collect();
    // `trace` and `sim` take an action word before their flags
    // (pps trace dump ..., pps sim run ...).
    let action =
        if (sub == "trace" || sub == "sim") && rest.first().is_some_and(|a| !a.starts_with("--")) {
            Some(rest.remove(0).to_string())
        } else {
            None
        };
    let mut i = 0;
    while i < rest.len() {
        let k = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| CliError::usage(format!("unexpected argument {}\n{USAGE}", rest[i])))?;
        let v = rest
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .map(|v| v.to_string());
        i += 1 + v.is_some() as usize;
        opts.push((k.to_string(), v));
    }
    let get = |name: &str| {
        opts.iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.clone())
    };

    match sub {
        "serve" | "shard-serve" => {
            let data = get("data");
            let random = get("random")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| CliError::usage("bad --random"))
                })
                .transpose()?;
            if data.is_some() == random.is_some() {
                return Err(CliError::usage(format!(
                    "serve needs exactly one of --data or --random\n{USAGE}"
                )));
            }
            let fold = match get("fold").as_deref() {
                // A shard worker serves one fixed partition for its
                // whole lifetime, so the per-database plan always
                // amortizes: precomputed is its default.
                None if sub == "shard-serve" => FoldStrategy::Precomputed,
                None | Some("incremental") => FoldStrategy::Incremental,
                Some("multiexp") => FoldStrategy::MultiExp,
                Some("parallel") => FoldStrategy::ParallelMultiExp,
                Some("precomputed") => FoldStrategy::Precomputed,
                Some(other) => {
                    return Err(CliError::usage(format!("unknown fold strategy {other}")))
                }
            };
            let max_concurrent = get("max-concurrent")
                .map(|v| {
                    v.parse::<usize>()
                        .ok()
                        .filter(|&k| k > 0)
                        .ok_or_else(|| CliError::usage("bad --max-concurrent"))
                })
                .transpose()?;
            let admission = match get("admission").as_deref() {
                None | Some("queue") => Admission::Queue,
                Some("refuse") => Admission::Refuse,
                Some(other) => {
                    return Err(CliError::usage(format!("unknown admission policy {other}")))
                }
            };
            let engine = match get("engine").as_deref() {
                None | Some("threaded") => ServeEngine::Threaded,
                Some("event") => ServeEngine::Event,
                Some(other) => return Err(CliError::usage(format!("unknown engine {other}"))),
            };
            let workers = get("workers")
                .map(|v| {
                    v.parse::<usize>()
                        .ok()
                        .filter(|&k| k > 0)
                        .ok_or_else(|| CliError::usage("bad --workers"))
                })
                .transpose()?;
            Ok(Command::Serve {
                data,
                random,
                listen: get("listen").unwrap_or_else(|| "127.0.0.1:7070".into()),
                max_sessions: get("max-sessions")
                    .map(|v| v.parse().map_err(|_| CliError::usage("bad --max-sessions")))
                    .transpose()?,
                fold,
                max_concurrent,
                admission,
                engine,
                workers,
                session_timeout: get("session-timeout")
                    .map(|v| {
                        v.parse()
                            .map_err(|_| CliError::usage("bad --session-timeout"))
                    })
                    .transpose()?,
                shutdown_after: get("shutdown-after")
                    .map(|v| {
                        v.parse()
                            .map_err(|_| CliError::usage("bad --shutdown-after"))
                    })
                    .transpose()?,
                metrics_addr: get("metrics-addr"),
                resume_ttl: get("resume-ttl")
                    .map(|v| v.parse().map_err(|_| CliError::usage("bad --resume-ttl")))
                    .transpose()?,
                resume_capacity: get("resume-capacity")
                    .map(|v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&k| k > 0)
                            .ok_or_else(|| CliError::usage("bad --resume-capacity"))
                    })
                    .transpose()?,
                shard: sub == "shard-serve",
                slow_query_ms: get("slow-query-ms")
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|_| CliError::usage("bad --slow-query-ms"))
                    })
                    .transpose()?,
            })
        }
        "query" => {
            let shards: Vec<String> = get("shards")
                .map(|v| {
                    v.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect()
                })
                .unwrap_or_default();
            let addr = match (get("addr"), shards.is_empty()) {
                (Some(addr), _) => addr,
                (None, false) => String::new(),
                (None, true) => {
                    return Err(CliError::usage("query needs --addr or --shards"));
                }
            };
            let select = get("select")
                .ok_or_else(|| CliError::usage("query needs --select i,j,k"))?
                .split(',')
                .map(|s| s.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|_| CliError::usage("bad --select list"))?;
            if select.is_empty() {
                return Err(CliError::usage("--select must name at least one row"));
            }
            let key_bits = get("key-bits")
                .map(|v| v.parse().map_err(|_| CliError::usage("bad --key-bits")))
                .transpose()?
                .unwrap_or(pps_crypto::DEFAULT_KEY_BITS);
            let batch = get("batch")
                .map(|v| v.parse().map_err(|_| CliError::usage("bad --batch")))
                .transpose()?
                .unwrap_or(100);
            if batch == 0 {
                return Err(CliError::usage("--batch must be positive"));
            }
            let client_threads = match get("client-threads").as_deref() {
                None => 1,
                Some("auto") => pps_crypto::host_parallelism(),
                Some(v) => {
                    let t: usize = v
                        .parse()
                        .map_err(|_| CliError::usage("bad --client-threads"))?;
                    if t == 0 {
                        pps_crypto::host_parallelism()
                    } else {
                        t
                    }
                }
            };
            let trace = match get("trace").as_deref() {
                None => None,
                Some("json") => Some(TraceFormat::Json),
                Some("pretty") => Some(TraceFormat::Pretty),
                Some(other) => {
                    return Err(CliError::usage(format!("unknown trace format {other}")))
                }
            };
            let shard_obs: Vec<String> = get("shard-obs")
                .map(|v| {
                    v.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect()
                })
                .unwrap_or_default();
            if !shard_obs.is_empty() && shard_obs.len() != shards.len() {
                return Err(CliError::usage(format!(
                    "--shard-obs lists {} addresses but --shards lists {}",
                    shard_obs.len(),
                    shards.len()
                )));
            }
            if trace.is_some() && !shards.is_empty() && shard_obs.is_empty() {
                return Err(CliError::usage(
                    "a traced sharded query needs --shard-obs (one obs address per shard, \
                     in shard order) to fetch the workers' spans",
                ));
            }
            Ok(Command::Query {
                addr,
                select,
                opts: QueryOptions {
                    key_bits,
                    key_file: get("key"),
                    batch,
                    client_threads,
                    retries: get("retries")
                        .map(|v| v.parse().map_err(|_| CliError::usage("bad --retries")))
                        .transpose()?
                        .unwrap_or(0),
                    trace,
                    shards,
                    shard_obs,
                },
            })
        }
        "multiclient" | "multidb" => {
            let data = get("data");
            let random = get("random")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| CliError::usage("bad --random"))
                })
                .transpose()?;
            if data.is_some() == random.is_some() {
                return Err(CliError::usage(format!(
                    "{sub} needs exactly one of --data or --random\n{USAGE}"
                )));
            }
            let k = get("k")
                .map(|v| {
                    v.parse::<usize>()
                        .ok()
                        .filter(|&k| k > 0)
                        .ok_or_else(|| CliError::usage("bad --k"))
                })
                .transpose()?
                .unwrap_or(3);
            let key_bits = get("key-bits")
                .map(|v| v.parse().map_err(|_| CliError::usage("bad --key-bits")))
                .transpose()?
                .unwrap_or(pps_crypto::DEFAULT_KEY_BITS);
            if sub == "multiclient" {
                Ok(Command::MultiClient {
                    data,
                    random,
                    k,
                    key_bits,
                })
            } else {
                Ok(Command::MultiDb {
                    data,
                    random,
                    k,
                    blinded: opts.iter().any(|(name, _)| name == "blinded"),
                    key_bits,
                })
            }
        }
        "keygen" => {
            let bits = get("bits")
                .ok_or_else(|| CliError::usage("keygen needs --bits"))?
                .parse()
                .map_err(|_| CliError::usage("bad --bits"))?;
            let out = get("out").ok_or_else(|| CliError::usage("keygen needs --out"))?;
            Ok(Command::Keygen { bits, out })
        }
        "trace" => match action.as_deref() {
            Some("dump") => {
                let obs = get("obs").ok_or_else(|| CliError::usage("trace dump needs --obs"))?;
                let id = get("id").ok_or_else(|| CliError::usage("trace dump needs --id"))?;
                if TraceContext::parse_trace_id(&id).is_none() {
                    return Err(CliError::usage(format!("bad --id {id:?}: expect hex")));
                }
                let format = match get("format").as_deref() {
                    None | Some("jsonl") => TraceDumpFormat::Jsonl,
                    Some("pretty") => TraceDumpFormat::Pretty,
                    Some("chrome") => TraceDumpFormat::Chrome,
                    Some(other) => {
                        return Err(CliError::usage(format!("unknown dump format {other}")))
                    }
                };
                Ok(Command::TraceDump { obs, id, format })
            }
            _ => Err(CliError::usage(format!(
                "trace needs an action (dump)\n{USAGE}"
            ))),
        },
        "sim" => match action.as_deref() {
            Some("run") => {
                let scenario =
                    get("scenario").ok_or_else(|| CliError::usage("sim run needs --scenario"))?;
                let seed = get("seed")
                    .map(|v| v.parse::<u64>().map_err(|_| CliError::usage("bad --seed")))
                    .transpose()?
                    .unwrap_or(0);
                let engine = match get("engine").as_deref() {
                    None => pps_sim::SimEngine::Threaded,
                    Some(name) => pps_sim::SimEngine::parse(name).ok_or_else(|| {
                        CliError::usage(format!("unknown engine {name} (threaded|event)"))
                    })?,
                };
                let population = get("population")
                    .map(|v| {
                        v.parse::<usize>()
                            .ok()
                            .filter(|&p| p > 0)
                            .ok_or_else(|| CliError::usage("bad --population"))
                    })
                    .transpose()?;
                Ok(Command::SimRun {
                    scenario,
                    seed,
                    engine,
                    population,
                })
            }
            Some("list") => Ok(Command::SimList),
            _ => Err(CliError::usage(format!(
                "sim needs an action (run, list)\n{USAGE}"
            ))),
        },
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(CliError::usage(format!("unknown command {other}\n{USAGE}"))),
    }
}

/// Loads a value file: one unsigned integer per line; blank lines and
/// `#` comments ignored.
///
/// # Errors
/// [`CliError`] on I/O failure or unparseable lines.
pub fn load_values(path: &Path) -> Result<Vec<u64>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))?;
    let mut values = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v = line.parse::<u64>().map_err(|_| {
            CliError::runtime(format!(
                "{}:{}: not a u64: {line:?}",
                path.display(),
                lineno + 1
            ))
        })?;
        values.push(v);
    }
    if values.is_empty() {
        return Err(CliError::runtime(format!("{}: no values", path.display())));
    }
    Ok(values)
}

/// Runtime knobs for [`run_server`] beyond the database and fold
/// strategy: session count, concurrency cap, deadlines, shutdown timer.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// Serve at most this many sessions, then exit (None = forever).
    pub max_sessions: Option<usize>,
    /// Cap on simultaneously active sessions (None = unbounded).
    pub max_concurrent: Option<usize>,
    /// Policy for connections arriving over the cap.
    pub admission: Option<Admission>,
    /// Which runtime drives accepted connections (None = threaded).
    pub engine: Option<ServeEngine>,
    /// Event-engine worker-pool size (None = host parallelism, capped
    /// at 8).
    pub workers: Option<usize>,
    /// Per-session I/O limits (None = [`SessionLimits::default`]).
    pub limits: Option<SessionLimits>,
    /// Trigger a graceful shutdown after this long.
    pub shutdown_after: Option<Duration>,
    /// Serve `GET /metrics` (Prometheus text) and `GET /healthz` (JSON)
    /// on this address while the accept loop runs.
    pub metrics_addr: Option<String>,
    /// Bounds for the session-resumption checkpoint table (None =
    /// [`ResumptionConfig::default`]: 1024 checkpoints, 120 s TTL).
    pub resumption: Option<ResumptionConfig>,
    /// Serve as a shard worker: reject any query frame that arrives
    /// without the §11 shard handshake (and plaintext baselines
    /// unconditionally), so no partial ever leaves this server
    /// unblinded.
    pub shard_only: bool,
    /// Flag sessions whose wall time reaches this threshold as slow
    /// queries (counter + traced `slow_query` event).
    pub slow_query_threshold: Option<Duration>,
}

/// Runs the concurrent server: accepts connections and serves one
/// protocol session per connection on its own thread, all sessions
/// sharing the same database. Returns after `max_sessions` connections
/// have been accepted and drained, after the `shutdown_after` timer
/// fires (draining active sessions first), or never — logging
/// per-session lines as they finish and an aggregate report on
/// shutdown.
///
/// # Errors
/// [`CliError`] on bind failure; per-session errors are logged and do
/// not kill the server.
pub fn run_server(
    values: Vec<u64>,
    listen: &str,
    fold: FoldStrategy,
    opts: &ServeOptions,
    log: &mut (dyn std::io::Write + Send),
) -> Result<(), CliError> {
    let db = std::sync::Arc::new(
        pps_protocol::Database::new(values)
            .map_err(|e| CliError::runtime(format!("bad database: {e}")))?,
    );
    let mut server = TcpServer::bind(std::sync::Arc::clone(&db), listen, fold)
        .map_err(|e| CliError::runtime(format!("cannot bind {listen}: {e}")))?;
    if let Some(limits) = opts.limits.clone() {
        server = server.with_limits(limits);
    }
    if let Some(max) = opts.max_concurrent {
        server = server.with_admission(max, opts.admission.unwrap_or(Admission::Queue));
    }
    if let Some(engine) = opts.engine {
        server = server.with_engine(engine);
    }
    if let Some(workers) = opts.workers {
        server = server.with_workers(workers);
    }
    if let Some(resumption) = opts.resumption {
        server = server.with_resumption(resumption);
    }
    if opts.shard_only {
        server = server.require_shard_handshake();
    }
    if let Some(threshold) = opts.slow_query_threshold {
        server = server.with_slow_query_threshold(threshold);
    }
    let metrics = match opts.metrics_addr.as_deref() {
        Some(addr) => {
            let registry = std::sync::Arc::new(Registry::new());
            // Traced sessions record into the trace buffer, which the
            // metrics endpoint serves back per trace id under
            // GET /trace/<id>; its overflow counts are scrapeable.
            let traces = std::sync::Arc::new(TraceBuffer::default().with_counters(
                registry.counter(
                    names::TRACE_TRACES_EVICTED_TOTAL,
                    "whole traces evicted from the trace buffer to admit newer ones",
                ),
                registry.counter(
                    names::TRACE_RECORDS_DROPPED_TOTAL,
                    "trace records dropped because their trace hit the record cap",
                ),
            ));
            let tracer = Tracer::new(
                std::sync::Arc::clone(&traces) as std::sync::Arc<dyn pps_obs::Collector>
            );
            server = server.with_observability(ServerObs::with_tracer(
                std::sync::Arc::clone(&registry),
                tracer,
            ));
            Some(
                MetricsServer::start_with_traces(addr, registry, traces).map_err(|e| {
                    CliError::runtime(format!("cannot bind metrics on {addr}: {e}"))
                })?,
            )
        }
        None => None,
    };
    let local = server
        .local_addr()
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let shard_tag = if opts.shard_only {
        " as shard worker"
    } else {
        ""
    };
    let _ = writeln!(
        log,
        "serving {} rows on {local} ({fold:?}){shard_tag}",
        db.len()
    );
    if let Some(metrics) = &metrics {
        let _ = writeln!(log, "metrics on http://{}/metrics", metrics.addr());
    }

    // The shutdown timer runs detached: if the session budget empties
    // first, its eventual wake-up self-connect hits a dead port and is
    // ignored.
    if let Some(after) = opts.shutdown_after {
        let handle = server
            .shutdown_handle()
            .map_err(|e| CliError::runtime(e.to_string()))?;
        std::thread::spawn(move || {
            std::thread::sleep(after);
            handle.shutdown();
        });
    }

    // Session threads report through the event callback; the writer is
    // shared behind a mutex so their lines never interleave mid-row.
    let log = std::sync::Mutex::new(log);
    let stats = server.serve_with(opts.max_sessions, &|event| {
        let mut log = log.lock().expect("log lock");
        match event {
            SessionEvent::Accepted { .. } => {}
            SessionEvent::Finished { session, stats } => {
                let _ = writeln!(
                    log,
                    "session {session}: folded {} indices in {:?}",
                    stats.folded, stats.compute
                );
            }
            SessionEvent::Failed { session, error } => {
                let _ = writeln!(log, "session {session} failed: {error}");
            }
            SessionEvent::Evicted { session, error } => {
                let _ = writeln!(log, "session {session} evicted: {error}");
            }
            SessionEvent::Panicked { session } => {
                let _ = writeln!(log, "session {session} panicked (contained)");
            }
            SessionEvent::Resumed { session } => {
                let _ = writeln!(log, "session {session} resumed from checkpoint");
            }
            SessionEvent::Refused { peer } => {
                let peer = peer.map(|p| format!(" from {p}")).unwrap_or_default();
                let _ = writeln!(log, "refused connection{peer}: at capacity");
            }
            SessionEvent::AcceptError { error } => {
                let _ = writeln!(log, "accept failed: {error}");
            }
        }
    });
    let log = log.into_inner().expect("log lock");
    let _ = writeln!(
        log,
        "served {} sessions ({} failed, {} refused, {} evicted, {} panicked, {} accept errors, {} resumed, {} checkpoints evicted): {} indices folded in {:?} compute, {:?} wall, {:.0} indices/s",
        stats.sessions,
        stats.failed,
        stats.refused,
        stats.evicted,
        stats.panicked,
        stats.accept_errors,
        stats.resumed,
        stats.checkpoints_evicted,
        stats.folded,
        stats.compute,
        stats.wall,
        stats.throughput(),
    );
    if let Some(metrics) = metrics {
        metrics.stop();
    }
    Ok(())
}

/// Result of one CLI query.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The private sum.
    pub sum: u128,
    /// Database size discovered from the server.
    pub n: usize,
    /// Rows requested.
    pub selected: usize,
    /// Bytes sent / received.
    pub bytes: (usize, usize),
    /// Connection/query attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// The phase decomposition, when [`QueryOptions::trace`] asked for
    /// one.
    pub report: Option<RunReport>,
    /// The distributed trace id, when the query ran traced and sharded.
    pub trace_id: Option<u128>,
    /// The merged cross-process timeline of a traced sharded query.
    pub timeline: Option<TraceTimeline>,
}

/// Runs one query against a listening server, re-issuing the whole
/// query (with exponential backoff) up to [`QueryOptions::retries`]
/// extra times on transient transport failures. With a trace format
/// set, the query runs instrumented and the outcome carries a
/// [`RunReport`] of the paper's phase decomposition.
///
/// # Errors
/// [`CliError`] on connection, key, or protocol failure.
pub fn run_query(
    addr: &str,
    select: &[usize],
    opts: &QueryOptions,
    rng: &mut StdRng,
) -> Result<QueryOutcome, CliError> {
    let client = match opts.key_file.as_deref() {
        Some(path) => {
            let bytes = std::fs::read(path)
                .map_err(|e| CliError::runtime(format!("cannot read key: {e}")))?;
            SumClient::new(
                PaillierSecretKey::keypair_from_bytes(&bytes)
                    .map_err(|e| CliError::runtime(format!("bad key file: {e}")))?,
            )
        }
        None => SumClient::generate(opts.key_bits, rng)
            .map_err(|e| CliError::runtime(format!("keygen failed: {e}")))?,
    };

    let config = TcpQueryConfig {
        batch_size: opts.batch,
        client_threads: opts.client_threads,
        retry: RetryPolicy {
            max_attempts: opts.retries.saturating_add(1),
            ..RetryPolicy::default()
        },
        ..TcpQueryConfig::default()
    };
    if !opts.shards.is_empty() {
        let config = ShardQueryConfig {
            tcp: config,
            value_bound: None,
        };
        let (outcome, report, trace_id, timeline) = if opts.trace.is_some() {
            let obs_addrs: Vec<std::net::SocketAddr> = opts
                .shard_obs
                .iter()
                .map(|a| {
                    a.to_socket_addrs()
                        .ok()
                        .and_then(|mut it| it.next())
                        .ok_or_else(|| CliError::runtime(format!("bad obs address {a}")))
                })
                .collect::<Result<_, _>>()?;
            let traced = run_sharded_query_traced(
                &opts.shards,
                &obs_addrs,
                &client,
                select,
                &config,
                std::sync::Arc::new(Registry::new()),
                rng,
            )
            .map_err(|e| CliError::runtime(format!("query failed: {e}")))?;
            (
                traced.outcome,
                Some(traced.report),
                Some(traced.trace_id),
                Some(traced.timeline),
            )
        } else {
            let outcome = run_sharded_query(&opts.shards, &client, select, &config, None, rng)
                .map_err(|e| CliError::runtime(format!("query failed: {e}")))?;
            (outcome, None, None, None)
        };
        let attempts = outcome.legs.iter().map(|l| l.attempts).max().unwrap_or(1);
        let bytes = outcome.legs.iter().fold((0, 0), |acc, l| {
            (
                acc.0 + l.traffic.payload_bytes_sent,
                acc.1 + l.traffic.payload_bytes_received,
            )
        });
        return Ok(QueryOutcome {
            sum: outcome.sum,
            n: outcome.n,
            selected: outcome.selected,
            bytes,
            attempts,
            report,
            trace_id,
            timeline,
        });
    }
    let (outcome, report) = if opts.trace.is_some() {
        let obs = QueryObs::new(std::sync::Arc::new(Registry::new()));
        let (outcome, report) = run_tcp_query_observed(addr, &client, select, &config, rng, &obs)
            .map_err(|e| CliError::runtime(format!("query failed: {e}")))?;
        (outcome, Some(report))
    } else {
        let outcome = run_tcp_query_with_retry(addr, &client, select, &config, rng)
            .map_err(|e| CliError::runtime(format!("query failed: {e}")))?;
        (outcome, None)
    };
    Ok(QueryOutcome {
        sum: outcome.sum,
        n: outcome.n,
        selected: outcome.selected,
        bytes: (
            outcome.traffic.payload_bytes_sent,
            outcome.traffic.payload_bytes_received,
        ),
        attempts: outcome.retry.attempts,
        report,
        trace_id: None,
        timeline: None,
    })
}

/// Renders a traced query's output for one [`TraceFormat`]: the plain
/// single-server report shape when there is no timeline, or the
/// sharded `{report, trace_id, timeline}` object / report table plus
/// cross-process timeline otherwise.
fn render_traced_output(format: TraceFormat, outcome: &QueryOutcome) -> Option<String> {
    let report = outcome.report.as_ref()?;
    Some(match (format, &outcome.timeline) {
        (TraceFormat::Json, Some(timeline)) => JsonValue::object()
            .field("report", report.to_json())
            .field(
                "trace_id",
                TraceContext::new(outcome.trace_id.unwrap_or(0), 0).trace_id_hex(),
            )
            .field("timeline", timeline.to_json())
            .render_pretty(),
        (TraceFormat::Json, None) => report.to_json().render_pretty(),
        (TraceFormat::Pretty, Some(timeline)) => {
            format!("{}{}", render_trace(report), timeline.render_pretty())
        }
        (TraceFormat::Pretty, None) => render_trace(report),
    })
}

/// Fetches one trace from a server's obs endpoint and renders it.
///
/// # Errors
/// [`CliError`] on a bad address, an unreachable endpoint, or an
/// unknown trace id.
pub fn run_trace_dump(
    obs: &str,
    id: &str,
    format: TraceDumpFormat,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let addr = obs
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .ok_or_else(|| CliError::runtime(format!("bad obs address {obs}")))?;
    let trace_id = TraceContext::parse_trace_id(id)
        .ok_or_else(|| CliError::usage(format!("bad trace id {id:?}")))?;
    let records = fetch_trace(addr, trace_id)
        .map_err(|e| CliError::runtime(format!("trace fetch failed: {e}")))?;
    if records.is_empty() {
        return Err(CliError::runtime(format!(
            "trace {id} not found on {obs} (unknown, evicted, or never traced)"
        )));
    }
    match format {
        TraceDumpFormat::Jsonl => {
            for record in &records {
                let json = match record {
                    pps_obs::Record::Span(s) => s.to_json(),
                    pps_obs::Record::Event(e) => e.to_json(),
                };
                let _ = writeln!(out, "{}", json.render());
            }
        }
        TraceDumpFormat::Pretty => {
            // A single server's view: every record on one process track.
            let timeline = TraceTimeline::assemble(trace_id, records, Vec::new());
            let _ = out.write_all(timeline.render_pretty().as_bytes());
        }
        TraceDumpFormat::Chrome => {
            let timeline = TraceTimeline::assemble(trace_id, records, Vec::new());
            let _ = out.write_all(timeline.to_chrome_trace().render_pretty().as_bytes());
        }
    }
    Ok(())
}

/// Renders a traced query's phase decomposition as an aligned table
/// with proportional bars — the paper's four components plus totals.
pub fn render_trace(report: &RunReport) -> String {
    let phases = [
        ("client_encrypt", report.client_encrypt),
        ("comm", report.comm),
        ("server_compute", report.server_compute),
        ("client_decrypt", report.client_decrypt),
    ];
    let longest = phases
        .iter()
        .map(|(_, d)| d.as_secs_f64())
        .fold(0.0_f64, f64::max);
    let mut out = format!(
        "phase timeline — {} (n={}, m={}, {}-bit key)\n",
        report.link, report.n, report.selected, report.key_bits
    );
    for (name, duration) in phases {
        let secs = duration.as_secs_f64();
        let width = if longest > 0.0 {
            ((secs / longest) * 40.0).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "  {name:<16} {secs:>12.6}s  {}\n",
            "#".repeat(width)
        ));
    }
    out.push_str(&format!(
        "  {:<16} {:>12.6}s\n",
        "online total",
        report.total_online().as_secs_f64()
    ));
    if !report.client_offline.is_zero() {
        out.push_str(&format!(
            "  {:<16} {:>12.6}s\n",
            "offline",
            report.client_offline.as_secs_f64()
        ));
    }
    out
}

/// Runs the §3.5 multi-client blinded protocol in process: `k`
/// cooperating clients, each holding one contiguous shard of a random
/// half-density selection, over a modeled gigabit link. The library
/// verifies the combined ring total against the plaintext oracle, so
/// success implies correctness.
///
/// # Errors
/// [`CliError`] on a bad database, a degenerate split (`k` larger than
/// the row count), or a key too narrow to blind.
pub fn run_multiclient_sim(
    values: Vec<u64>,
    k: usize,
    key_bits: usize,
    rng: &mut StdRng,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let db = Database::new(values).map_err(|e| CliError::runtime(format!("bad database: {e}")))?;
    let n = db.len();
    let selection = Selection::random(n, 0.5, rng)
        .map_err(|e| CliError::runtime(format!("bad selection: {e}")))?;
    let report = run_multiclient(
        &db,
        &selection,
        k,
        key_bits,
        LinkProfile::gigabit_lan(),
        rng,
    )
    .map_err(|e| CliError::runtime(format!("multiclient failed: {e}")))?;
    let _ = writeln!(
        out,
        "multi-client blinded sum: k={k} clients, {n} rows, {} selected, {key_bits}-bit key",
        selection.selected_count(),
    );
    let _ = writeln!(
        out,
        "result {} (oracle-checked); parallel online {:?}, ring pass {:?}",
        report.aggregate.result,
        report.aggregate.total_online(),
        report.ring_comm,
    );
    Ok(())
}

/// Runs the §3.5 multi-database protocol in process: the values split
/// into `k` contiguous horizontal partitions, each privately queried
/// with a random half-density selection; with `blinded` the partials
/// carry correlated blinding that cancels in the combined total. The
/// library verifies the total against the plaintext oracle.
///
/// # Errors
/// [`CliError`] on a bad database, a degenerate split, or (blinded) a
/// key too narrow to blind.
pub fn run_multidb_sim(
    values: Vec<u64>,
    k: usize,
    blinded: bool,
    key_bits: usize,
    rng: &mut StdRng,
    out: &mut dyn std::io::Write,
) -> Result<(), CliError> {
    let n = values.len();
    if n < k {
        return Err(CliError::runtime(format!(
            "need at least one row per partition ({n} rows < {k} partitions)"
        )));
    }
    let base = n / k;
    let mut partitions = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let end = if i == k - 1 { n } else { start + base };
        let db = Database::new(values[start..end].to_vec())
            .map_err(|e| CliError::runtime(format!("bad partition: {e}")))?;
        let selection = Selection::random(end - start, 0.5, rng)
            .map_err(|e| CliError::runtime(format!("bad selection: {e}")))?;
        partitions.push(Partition { db, selection });
        start = end;
    }
    let client = SumClient::generate(key_bits, rng)
        .map_err(|e| CliError::runtime(format!("keygen failed: {e}")))?;
    let link = LinkProfile::gigabit_lan();
    if blinded {
        let (report, total) = run_multidb_blinded(&partitions, &client, link, rng)
            .map_err(|e| CliError::runtime(format!("multidb failed: {e}")))?;
        let _ = writeln!(
            out,
            "multi-DB blinded sum: k={k} partitions, {n} rows, {key_bits}-bit key",
        );
        let _ = writeln!(
            out,
            "total {total} (oracle-checked; every partial blinded mod 2^(key_bits-2)); parallel online {:?}",
            report.total_online(),
        );
    } else {
        let (reports, total) = run_multidb(&partitions, &client, link, rng)
            .map_err(|e| CliError::runtime(format!("multidb failed: {e}")))?;
        let _ = writeln!(
            out,
            "multi-DB sum: k={k} partitions, {n} rows, {key_bits}-bit key",
        );
        for (i, r) in reports.iter().enumerate() {
            let _ = writeln!(out, "  partition {i}: partial {}", r.result);
        }
        let _ = writeln!(out, "total {total} (oracle-checked)");
    }
    Ok(())
}

/// Generates a keypair and writes the secret bytes to `out`.
///
/// # Errors
/// [`CliError`] on keygen or I/O failure.
pub fn run_keygen(bits: usize, out: &Path, rng: &mut StdRng) -> Result<(), CliError> {
    let kp = PaillierKeypair::generate(bits, rng)
        .map_err(|e| CliError::runtime(format!("keygen failed: {e}")))?;
    std::fs::write(out, kp.secret.to_bytes())
        .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", out.display())))?;
    Ok(())
}

/// Resolves the `--data FILE | --random N` pair parse_args validated.
fn resolve_values(data: Option<String>, random: Option<usize>) -> Result<Vec<u64>, CliError> {
    match (data, random) {
        (Some(path), None) => load_values(Path::new(&path)),
        (None, Some(n)) => {
            let mut rng = StdRng::from_entropy();
            Ok((0..n)
                .map(|_| rand::Rng::gen::<u32>(&mut rng) as u64)
                .collect())
        }
        _ => unreachable!("parse_args enforces exactly one source"),
    }
}

/// Entry point shared by `main` and the integration tests.
///
/// # Errors
/// [`CliError`] carrying the process exit code.
pub fn run(args: &[String], out: &mut (dyn std::io::Write + Send)) -> Result<(), CliError> {
    match parse_args(args)? {
        Command::Help => {
            let _ = out.write_all(USAGE.as_bytes());
            Ok(())
        }
        Command::Keygen { bits, out: path } => {
            let mut rng = StdRng::from_entropy();
            run_keygen(bits, Path::new(&path), &mut rng)?;
            let _ = writeln!(out, "wrote {bits}-bit secret key to {path}");
            Ok(())
        }
        Command::Serve {
            data,
            random,
            listen,
            max_sessions,
            fold,
            max_concurrent,
            admission,
            engine,
            workers,
            session_timeout,
            shutdown_after,
            metrics_addr,
            resume_ttl,
            resume_capacity,
            shard,
            slow_query_ms,
        } => {
            let values = resolve_values(data, random)?;
            let limits = session_timeout.map(|secs| {
                if secs == 0 {
                    SessionLimits::unlimited()
                } else {
                    SessionLimits {
                        session_deadline: Some(Duration::from_secs(secs)),
                        ..SessionLimits::default()
                    }
                }
            });
            let resumption = match (resume_ttl, resume_capacity) {
                (None, None) => None,
                (ttl, capacity) => {
                    let default = ResumptionConfig::default();
                    Some(ResumptionConfig {
                        ttl: ttl.map(Duration::from_secs).unwrap_or(default.ttl),
                        capacity: capacity.unwrap_or(default.capacity),
                    })
                }
            };
            let opts = ServeOptions {
                max_sessions,
                max_concurrent,
                admission: Some(admission),
                engine: Some(engine),
                workers,
                limits,
                shutdown_after: shutdown_after.map(Duration::from_secs),
                metrics_addr,
                resumption,
                shard_only: shard,
                slow_query_threshold: slow_query_ms.map(Duration::from_millis),
            };
            run_server(values, &listen, fold, &opts, out)
        }
        Command::MultiClient {
            data,
            random,
            k,
            key_bits,
        } => {
            let values = resolve_values(data, random)?;
            let mut rng = StdRng::from_entropy();
            run_multiclient_sim(values, k, key_bits, &mut rng, out)
        }
        Command::MultiDb {
            data,
            random,
            k,
            blinded,
            key_bits,
        } => {
            let values = resolve_values(data, random)?;
            let mut rng = StdRng::from_entropy();
            run_multidb_sim(values, k, blinded, key_bits, &mut rng, out)
        }
        Command::SimRun {
            scenario,
            seed,
            engine,
            population,
        } => {
            let report = pps_sim::harness::run_named(&scenario, seed, engine, population)
                .map_err(|e| CliError::usage(e.to_string()))?;
            let _ = out.write_all(report.render().as_bytes());
            if report.ok() {
                Ok(())
            } else {
                Err(CliError {
                    message: format!(
                        "{} invariant violation(s); repro: {}",
                        report.violations.len(),
                        report.repro()
                    ),
                    code: 1,
                })
            }
        }
        Command::SimList => {
            for s in pps_sim::Scenario::registry() {
                let _ = writeln!(
                    out,
                    "{:<12} {:>5} clients  {}",
                    s.name,
                    s.population.total() + s.shard_groups * pps_sim::run::SHARD_LEGS,
                    s.about
                );
            }
            Ok(())
        }
        Command::TraceDump { obs, id, format } => run_trace_dump(&obs, &id, format, out),
        Command::Query { addr, select, opts } => {
            let mut rng = StdRng::from_entropy();
            let outcome = run_query(&addr, &select, &opts, &mut rng)?;
            if let Some(text) = opts.trace.and_then(|f| render_traced_output(f, &outcome)) {
                let _ = out.write_all(text.as_bytes());
            }
            let _ = writeln!(
                out,
                "private sum of {} selected rows (of {}): {}",
                outcome.selected, outcome.n, outcome.sum
            );
            let _ = writeln!(
                out,
                "traffic: {} B up, {} B down",
                outcome.bytes.0, outcome.bytes.1
            );
            if outcome.attempts > 1 {
                let _ = writeln!(out, "succeeded after {} attempts", outcome.attempts);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_serve() {
        let c = parse_args(&args(
            "serve --random 100 --listen 0.0.0.0:9 --fold multiexp",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                data: None,
                random: Some(100),
                listen: "0.0.0.0:9".into(),
                max_sessions: None,
                fold: FoldStrategy::MultiExp,
                max_concurrent: None,
                admission: Admission::Queue,
                engine: ServeEngine::Threaded,
                workers: None,
                session_timeout: None,
                shutdown_after: None,
                metrics_addr: None,
                resume_ttl: None,
                resume_capacity: None,
                shard: false,
                slow_query_ms: None,
            }
        );
        match parse_args(&args("serve --random 8 --fold parallel")).unwrap() {
            Command::Serve { fold, .. } => assert_eq!(fold, FoldStrategy::ParallelMultiExp),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("serve --random 8 --fold precomputed")).unwrap() {
            Command::Serve { fold, .. } => assert_eq!(fold, FoldStrategy::Precomputed),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("serve --random 8")).unwrap() {
            Command::Serve { fold, .. } => {
                assert_eq!(fold, FoldStrategy::Incremental, "serve default unchanged")
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("serve")).is_err(), "needs a data source");
        assert!(
            parse_args(&args("serve --data f --random 5")).is_err(),
            "not both"
        );
        assert!(parse_args(&args("serve --random 5 --fold bogus")).is_err());
    }

    #[test]
    fn parse_serve_hardening_flags() {
        match parse_args(&args(
            "serve --random 8 --max-concurrent 4 --admission refuse --session-timeout 60 --shutdown-after 120",
        ))
        .unwrap()
        {
            Command::Serve {
                max_concurrent,
                admission,
                session_timeout,
                shutdown_after,
                ..
            } => {
                assert_eq!(max_concurrent, Some(4));
                assert_eq!(admission, Admission::Refuse);
                assert_eq!(session_timeout, Some(60));
                assert_eq!(shutdown_after, Some(120));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("serve --random 8 --max-concurrent 0")).is_err());
        assert!(parse_args(&args("serve --random 8 --max-concurrent x")).is_err());
        assert!(parse_args(&args("serve --random 8 --admission sometimes")).is_err());
        assert!(parse_args(&args("serve --random 8 --session-timeout x")).is_err());
        assert!(parse_args(&args("serve --random 8 --shutdown-after x")).is_err());
    }

    #[test]
    fn parse_serve_engine_flags() {
        match parse_args(&args("serve --random 8 --engine event --workers 4")).unwrap() {
            Command::Serve {
                engine, workers, ..
            } => {
                assert_eq!(engine, ServeEngine::Event);
                assert_eq!(workers, Some(4));
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("serve --random 8 --engine threaded")).unwrap() {
            Command::Serve {
                engine, workers, ..
            } => {
                assert_eq!(engine, ServeEngine::Threaded);
                assert_eq!(workers, None, "worker pool defaults to host parallelism");
            }
            other => panic!("{other:?}"),
        }
        // shard-serve takes the same engine flags.
        match parse_args(&args("shard-serve --random 8 --engine event")).unwrap() {
            Command::Serve { engine, shard, .. } => {
                assert_eq!(engine, ServeEngine::Event);
                assert!(shard);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("serve --random 8 --engine coroutine")).is_err());
        assert!(parse_args(&args("serve --random 8 --workers 0")).is_err());
        assert!(parse_args(&args("serve --random 8 --workers x")).is_err());
    }

    #[test]
    fn parse_resume_flags() {
        match parse_args(&args(
            "serve --random 8 --resume-ttl 45 --resume-capacity 64",
        ))
        .unwrap()
        {
            Command::Serve {
                resume_ttl,
                resume_capacity,
                ..
            } => {
                assert_eq!(resume_ttl, Some(45));
                assert_eq!(resume_capacity, Some(64));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("serve --random 8 --resume-ttl x")).is_err());
        assert!(parse_args(&args("serve --random 8 --resume-capacity 0")).is_err());
        assert!(parse_args(&args("serve --random 8 --resume-capacity x")).is_err());
    }

    #[test]
    fn parse_metrics_addr() {
        match parse_args(&args("serve --random 8 --metrics-addr 127.0.0.1:9100")).unwrap() {
            Command::Serve { metrics_addr, .. } => {
                assert_eq!(metrics_addr.as_deref(), Some("127.0.0.1:9100"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_trace() {
        match parse_args(&args("query --addr a:1 --select 1 --trace json")).unwrap() {
            Command::Query { opts, .. } => assert_eq!(opts.trace, Some(TraceFormat::Json)),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("query --addr a:1 --select 1 --trace pretty")).unwrap() {
            Command::Query { opts, .. } => assert_eq!(opts.trace, Some(TraceFormat::Pretty)),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("query --addr a:1 --select 1 --trace yaml")).is_err());
    }

    #[test]
    fn parse_query() {
        let c = parse_args(&args(
            "query --addr 1.2.3.4:5 --select 1,2,3 --key-bits 512",
        ))
        .unwrap();
        match c {
            Command::Query { addr, select, opts } => {
                assert_eq!(addr, "1.2.3.4:5");
                assert_eq!(select, vec![1, 2, 3]);
                assert_eq!(opts.key_bits, 512);
                assert_eq!(opts.key_file, None);
                assert_eq!(opts.batch, 100);
                assert_eq!(opts.client_threads, 1, "paper-fidelity default");
                assert_eq!(opts.retries, 0, "single shot unless asked");
                assert_eq!(opts.trace, None);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("query --addr a:1 --select 1 --retries 3")).unwrap() {
            Command::Query { opts, .. } => assert_eq!(opts.retries, 3),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("query --addr a:1 --select 1 --retries x")).is_err());
        assert!(parse_args(&args("query --select 1")).is_err(), "needs addr");
        assert!(
            parse_args(&args("query --addr a:1")).is_err(),
            "needs select"
        );
        assert!(parse_args(&args("query --addr a:1 --select x")).is_err());
        assert!(parse_args(&args("query --addr a:1 --select 1 --batch 0")).is_err());
    }

    #[test]
    fn parse_client_threads() {
        match parse_args(&args("query --addr a:1 --select 1 --client-threads 6")).unwrap() {
            Command::Query { opts, .. } => assert_eq!(opts.client_threads, 6),
            other => panic!("{other:?}"),
        }
        // "auto" and 0 both resolve to the host's core count (>= 1).
        for spec in ["auto", "0"] {
            match parse_args(&args(&format!(
                "query --addr a:1 --select 1 --client-threads {spec}"
            )))
            .unwrap()
            {
                Command::Query { opts, .. } => {
                    assert_eq!(opts.client_threads, pps_crypto::host_parallelism())
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(parse_args(&args("query --addr a:1 --select 1 --client-threads x")).is_err());
    }

    #[test]
    fn parse_shard_serve() {
        match parse_args(&args("shard-serve --random 16 --fold multiexp")).unwrap() {
            Command::Serve { shard, fold, .. } => {
                assert!(shard, "shard-serve sets the worker flag");
                assert_eq!(fold, FoldStrategy::MultiExp, "shares serve's flags");
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("shard-serve --random 16")).unwrap() {
            Command::Serve { shard, fold, .. } => {
                assert!(shard);
                assert_eq!(
                    fold,
                    FoldStrategy::Precomputed,
                    "shard workers default to the precomputed plan"
                );
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("serve --random 16")).unwrap() {
            Command::Serve { shard, .. } => assert!(!shard),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("shard-serve")).is_err(), "needs a source");
    }

    #[test]
    fn parse_shards() {
        match parse_args(&args("query --shards a:1,b:2,c:3 --select 0,5")).unwrap() {
            Command::Query { addr, opts, .. } => {
                assert_eq!(opts.shards, vec!["a:1", "b:2", "c:3"]);
                assert_eq!(addr, "", "--addr not needed with --shards");
            }
            other => panic!("{other:?}"),
        }
        // --addr still accepted alongside (and ignored by the engine).
        match parse_args(&args("query --addr x:9 --shards a:1 --select 0")).unwrap() {
            Command::Query { addr, opts, .. } => {
                assert_eq!(addr, "x:9");
                assert_eq!(opts.shards, vec!["a:1"]);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse_args(&args("query --select 0")).is_err(),
            "needs --addr or --shards"
        );
    }

    #[test]
    fn parse_traced_sharded_query() {
        // A traced sharded query pairs each shard with its obs address.
        match parse_args(&args(
            "query --shards a:1,b:2 --shard-obs a:91,b:92 --select 0 --trace json",
        ))
        .unwrap()
        {
            Command::Query { opts, .. } => {
                assert_eq!(opts.trace, Some(TraceFormat::Json));
                assert_eq!(opts.shards, vec!["a:1", "b:2"]);
                assert_eq!(opts.shard_obs, vec!["a:91", "b:92"]);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse_args(&args("query --shards a:1 --select 0 --trace json")).is_err(),
            "traced sharded query needs --shard-obs"
        );
        assert!(
            parse_args(&args(
                "query --shards a:1,b:2 --shard-obs a:91 --select 0 --trace json"
            ))
            .is_err(),
            "--shard-obs must pair up with --shards"
        );
        // Untraced sharded queries don't need obs addresses.
        assert!(parse_args(&args("query --shards a:1 --select 0")).is_ok());
    }

    #[test]
    fn parse_slow_query_flag() {
        match parse_args(&args("serve --random 8 --slow-query-ms 250")).unwrap() {
            Command::Serve { slow_query_ms, .. } => assert_eq!(slow_query_ms, Some(250)),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("serve --random 8 --slow-query-ms x")).is_err());
    }

    #[test]
    fn parse_trace_dump() {
        match parse_args(&args("trace dump --obs 127.0.0.1:9100 --id abc123")).unwrap() {
            Command::TraceDump { obs, id, format } => {
                assert_eq!(obs, "127.0.0.1:9100");
                assert_eq!(id, "abc123");
                assert_eq!(format, TraceDumpFormat::Jsonl);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("trace dump --obs a:1 --id ff --format chrome")).unwrap() {
            Command::TraceDump { format, .. } => assert_eq!(format, TraceDumpFormat::Chrome),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("trace dump --obs a:1 --id ff --format pretty")).unwrap() {
            Command::TraceDump { format, .. } => assert_eq!(format, TraceDumpFormat::Pretty),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("trace")).is_err(), "needs an action");
        assert!(
            parse_args(&args("trace dump --obs a:1")).is_err(),
            "needs id"
        );
        assert!(
            parse_args(&args("trace dump --id ff")).is_err(),
            "needs obs"
        );
        assert!(parse_args(&args("trace dump --obs a:1 --id zz")).is_err());
        assert!(parse_args(&args("trace dump --obs a:1 --id ff --format yaml")).is_err());
    }

    #[test]
    fn parse_sim() {
        match parse_args(&args("sim run --scenario mixed --seed 7 --engine event")).unwrap() {
            Command::SimRun {
                scenario,
                seed,
                engine,
                population,
            } => {
                assert_eq!(scenario, "mixed");
                assert_eq!(seed, 7);
                assert_eq!(engine, pps_sim::SimEngine::Event);
                assert_eq!(population, None);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&args("sim run --scenario clean_lan --population 16")).unwrap() {
            Command::SimRun {
                seed,
                engine,
                population,
                ..
            } => {
                assert_eq!(seed, 0, "seed defaults to 0");
                assert_eq!(engine, pps_sim::SimEngine::Threaded);
                assert_eq!(population, Some(16));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_args(&args("sim list")).unwrap(), Command::SimList);
        assert!(parse_args(&args("sim")).is_err(), "needs an action");
        assert!(parse_args(&args("sim run")).is_err(), "needs --scenario");
        assert!(parse_args(&args("sim run --scenario x --engine warp")).is_err());
        assert!(parse_args(&args("sim run --scenario x --population 0")).is_err());
    }

    #[test]
    fn parse_multiclient_and_multidb() {
        assert_eq!(
            parse_args(&args("multiclient --random 24 --k 4 --key-bits 128")).unwrap(),
            Command::MultiClient {
                data: None,
                random: Some(24),
                k: 4,
                key_bits: 128,
            }
        );
        match parse_args(&args("multiclient --random 24")).unwrap() {
            Command::MultiClient { k, key_bits, .. } => {
                assert_eq!(k, 3, "paper-style default fan-out");
                assert_eq!(key_bits, pps_crypto::DEFAULT_KEY_BITS);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_args(&args("multidb --random 24 --k 2 --blinded --key-bits 128")).unwrap(),
            Command::MultiDb {
                data: None,
                random: Some(24),
                k: 2,
                blinded: true,
                key_bits: 128,
            }
        );
        match parse_args(&args("multidb --data f.txt")).unwrap() {
            Command::MultiDb { blinded, data, .. } => {
                assert!(!blinded);
                assert_eq!(data.as_deref(), Some("f.txt"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("multiclient")).is_err(), "needs a source");
        assert!(parse_args(&args("multidb --data f --random 5")).is_err());
        assert!(parse_args(&args("multiclient --random 8 --k 0")).is_err());
        assert!(parse_args(&args("multiclient --random 8 --k x")).is_err());
    }

    #[test]
    fn parse_keygen_and_help() {
        let c = parse_args(&args("keygen --bits 256 --out k.bin")).unwrap();
        assert_eq!(
            c,
            Command::Keygen {
                bits: 256,
                out: "k.bin".into()
            }
        );
        assert!(parse_args(&args("keygen --bits x --out k")).is_err());
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert!(parse_args(&args("frobnicate")).is_err());
    }

    #[test]
    fn render_trace_shows_each_phase() {
        let report = RunReport {
            variant: pps_protocol::Variant::Batched,
            n: 100,
            selected: 3,
            key_bits: 512,
            link: "tcp:1.2.3.4:5".into(),
            client_offline: Duration::ZERO,
            client_encrypt: Duration::from_millis(400),
            server_compute: Duration::from_millis(100),
            comm: Duration::from_millis(200),
            client_decrypt: Duration::from_millis(10),
            pipelined_total: None,
            bytes_to_server: 1,
            bytes_to_client: 2,
            messages: 3,
            result: 42,
        };
        let text = render_trace(&report);
        assert!(text.contains("tcp:1.2.3.4:5"));
        for phase in ["client_encrypt", "comm", "server_compute", "client_decrypt"] {
            assert!(text.contains(phase), "missing {phase} in:\n{text}");
        }
        assert!(text.contains("online total"));
        // Bars scale with the longest phase: encrypt gets the full bar.
        assert!(text.contains(&"#".repeat(40)));
        // Offline row only appears when there was offline work.
        assert!(!text.contains("offline"));
    }

    #[test]
    fn load_values_parses_and_validates() {
        let dir = std::env::temp_dir().join("pps-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("values.txt");
        std::fs::write(&path, "# comment\n10\n\n 20 \n30\n").unwrap();
        assert_eq!(load_values(&path).unwrap(), vec![10, 20, 30]);

        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "10\nnope\n").unwrap();
        assert!(load_values(&bad).is_err());

        let empty = dir.join("empty.txt");
        std::fs::write(&empty, "# nothing\n").unwrap();
        assert!(load_values(&empty).is_err());

        assert!(load_values(Path::new("/definitely/not/here")).is_err());
    }
}
