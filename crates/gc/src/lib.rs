//! # pps-gc
//!
//! A semi-honest **Yao garbled-circuit engine**, built as the
//! general-secure-computation comparator for the selected-sum protocol.
//!
//! The paper (§2) positions its linear homomorphic protocol against
//! general SMC, citing Fairplay's ≈15 minutes for a 1,000-element
//! database [14, 16]. Fairplay is closed 2004 software, so this crate
//! implements the same construction from scratch:
//!
//! * [`CircuitBuilder`] — boolean circuits (AND/OR/XOR), ripple-carry
//!   adders, muxes, and [`selected_sum_circuit`], the compiled
//!   selected-sum function;
//! * [`garble`] / [`evaluate`] — classic point-and-permute garbling with
//!   a SHA-256 row KDF and 128-bit labels;
//! * [`ot_request`] / [`ot_reply`] / [`ot_receive`] — 1-of-2 oblivious
//!   transfer from Paillier (one OT per client selection bit);
//! * [`run_gc_selected_sum`] — the end-to-end protocol with full
//!   time/byte accounting ([`GcReport`]).
//!
//! # Example
//!
//! ```
//! use pps_crypto::PaillierKeypair;
//! use pps_gc::run_gc_selected_sum;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! // The OT key must exceed the 128-bit label width (512 in the paper).
//! let kp = PaillierKeypair::generate(192, &mut rng).unwrap();
//! let report = run_gc_selected_sum(
//!     &[10, 20, 30],            // server's values
//!     &[true, false, true],     // client's private selection
//!     8,                        // bits per value
//!     &kp,
//!     &mut rng,
//! ).unwrap();
//! assert_eq!(report.result, 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod circuit;
mod error;
mod freexor;
mod garble;
mod ot;
mod run;

pub use builder::{pack_selected_sum_garbler_values, selected_sum_circuit, CircuitBuilder};
pub use circuit::{bits_to_u128, u128_to_bits, Circuit, Gate, GateOp, WireId};
pub use error::GcError;
pub use freexor::{evaluate_free_xor, garble_free_xor, FreeXorCircuit};
pub use garble::{evaluate, garble, GarbledCircuit, GarblerSecrets, Label, WirePair, LABEL_LEN};
pub use ot::{ot_receive, ot_reply, ot_request, OtReply, OtRequest};
pub use run::{run_gc_selected_sum, GcReport};
