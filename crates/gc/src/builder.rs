//! Circuit construction: wire allocation, adders, muxes, and the
//! selected-sum circuit compiler.

use crate::circuit::{Circuit, Gate, GateOp, WireId};

/// Incrementally builds a [`Circuit`] in topological order.
#[derive(Default)]
pub struct CircuitBuilder {
    circuit: Circuit,
    /// Lazily created constant-false wire (a garbler input fixed to 0).
    const_false: Option<WireId>,
}

impl CircuitBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_wire(&mut self) -> WireId {
        let w = self.circuit.wire_count;
        self.circuit.wire_count += 1;
        w
    }

    /// Allocates one garbler (server) input wire.
    pub fn garbler_input(&mut self) -> WireId {
        let w = self.fresh_wire();
        self.circuit.garbler_inputs.push(w);
        w
    }

    /// Allocates one evaluator (client) input wire.
    pub fn evaluator_input(&mut self) -> WireId {
        let w = self.fresh_wire();
        self.circuit.evaluator_inputs.push(w);
        w
    }

    /// Allocates `n` garbler input wires (LSB-first for numbers).
    pub fn garbler_inputs(&mut self, n: usize) -> Vec<WireId> {
        (0..n).map(|_| self.garbler_input()).collect()
    }

    /// Allocates `n` evaluator input wires.
    pub fn evaluator_inputs(&mut self, n: usize) -> Vec<WireId> {
        (0..n).map(|_| self.evaluator_input()).collect()
    }

    /// A wire that always carries 0. Implemented as an extra garbler
    /// input the runtime pins to `false` (see
    /// [`CircuitBuilder::constant_wire_values`]).
    pub fn const_false(&mut self) -> WireId {
        if let Some(w) = self.const_false {
            return w;
        }
        let w = self.garbler_input();
        self.const_false = Some(w);
        w
    }

    /// Number of trailing constant garbler inputs the runtime must pin
    /// (0 or 1), and their values.
    pub fn constant_wire_values(&self) -> Vec<bool> {
        if self.const_false.is_some() {
            vec![false]
        } else {
            Vec::new()
        }
    }

    fn gate(&mut self, op: GateOp, a: WireId, b: WireId) -> WireId {
        let out = self.fresh_wire();
        self.circuit.gates.push(Gate { op, a, b, out });
        out
    }

    /// `a AND b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateOp::And, a, b)
    }

    /// `a OR b`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateOp::Or, a, b)
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateOp::Xor, a, b)
    }

    /// One-bit full adder; returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: WireId, b: WireId, carry_in: WireId) -> (WireId, WireId) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, carry_in);
        let t1 = self.and(axb, carry_in);
        let t2 = self.and(a, b);
        let carry = self.or(t1, t2);
        (sum, carry)
    }

    /// Ripple-carry addition of two little-endian numbers of equal width;
    /// returns `width + 1` result bits (the top bit is the carry).
    ///
    /// # Panics
    /// Panics on width mismatch (builder bug).
    pub fn add(&mut self, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len(), "adder operand widths must match");
        let mut carry = self.const_false();
        let mut out = Vec::with_capacity(a.len() + 1);
        for (&ai, &bi) in a.iter().zip(b.iter()) {
            let (s, c) = self.full_adder(ai, bi, carry);
            out.push(s);
            carry = c;
        }
        out.push(carry);
        out
    }

    /// Zero-extends `bits` to `width` using the constant-false wire.
    pub fn zero_extend(&mut self, bits: &[WireId], width: usize) -> Vec<WireId> {
        let mut out = bits.to_vec();
        let zero = self.const_false();
        while out.len() < width {
            out.push(zero);
        }
        out.truncate(width);
        out
    }

    /// Bitwise AND of a number with a single select bit:
    /// `select ? value : 0` (a 1-bit mux against zero).
    pub fn gate_by_bit(&mut self, value: &[WireId], select: WireId) -> Vec<WireId> {
        value.iter().map(|&v| self.and(v, select)).collect()
    }

    /// Two-way mux: `select ? a : b`, per-bit
    /// `b XOR (select AND (a XOR b))`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn mux(&mut self, select: WireId, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len(), "mux operand widths must match");
        a.iter()
            .zip(b.iter())
            .map(|(&ai, &bi)| {
                let d = self.xor(ai, bi);
                let g = self.and(d, select);
                self.xor(g, bi)
            })
            .collect()
    }

    /// Marks wires as circuit outputs (LSB-first for numbers).
    pub fn outputs(&mut self, wires: &[WireId]) {
        self.circuit.outputs.extend_from_slice(wires);
    }

    /// Finalizes the circuit.
    pub fn build(self) -> Circuit {
        self.circuit
    }
}

/// The selected-sum circuit: the garbler (server) supplies `n` values of
/// `value_bits` bits; the evaluator (client) supplies `n` selection bits.
/// Output: `Σ I_i·x_i` in `value_bits + ⌈log₂ n⌉` bits.
///
/// Also returns the accumulator width.
pub fn selected_sum_circuit(n: usize, value_bits: usize) -> (Circuit, usize) {
    assert!(n > 0 && value_bits > 0, "empty selected-sum circuit");
    let acc_bits = value_bits + (usize::BITS - (n - 1).leading_zeros()) as usize;
    let acc_bits = acc_bits.max(value_bits + 1);

    let mut b = CircuitBuilder::new();
    // Input order: all server values first (row-major), then client bits.
    let values: Vec<Vec<WireId>> = (0..n).map(|_| b.garbler_inputs(value_bits)).collect();
    let selects: Vec<WireId> = (0..n).map(|_| b.evaluator_input()).collect();

    let mut acc = {
        let gated = b.gate_by_bit(&values[0], selects[0]);
        b.zero_extend(&gated, acc_bits)
    };
    for i in 1..n {
        let gated = b.gate_by_bit(&values[i], selects[i]);
        let wide = b.zero_extend(&gated, acc_bits);
        let sum = b.add(&acc, &wide);
        acc = sum[..acc_bits].to_vec(); // truncate: acc_bits suffices by construction
    }
    b.outputs(&acc);
    // The constant wire (if allocated) is a trailing garbler input pinned
    // to false; `pack_selected_sum_garbler_values` appends it.
    let consts = b.constant_wire_values();
    debug_assert!(consts.len() <= 1);
    (b.build(), acc_bits)
}

/// Packs plaintext garbler values for [`selected_sum_circuit`]:
/// `n` numbers (LSB-first bits each) followed by the pinned constant
/// wires in allocation order.
pub fn pack_selected_sum_garbler_values(
    values: &[u64],
    value_bits: usize,
    circuit: &Circuit,
) -> Vec<bool> {
    let mut out = Vec::with_capacity(circuit.garbler_inputs.len());
    for &v in values {
        for i in 0..value_bits {
            out.push((v >> i) & 1 == 1);
        }
    }
    // Remaining garbler inputs are pinned constants (false).
    while out.len() < circuit.garbler_inputs.len() {
        out.push(false);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::bits_to_u128;

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for bb in [false, true] {
                for c in [false, true] {
                    let mut builder = CircuitBuilder::new();
                    let wa = builder.garbler_input();
                    let wb = builder.garbler_input();
                    let wc = builder.garbler_input();
                    let (s, co) = builder.full_adder(wa, wb, wc);
                    builder.outputs(&[s, co]);
                    let circ = builder.build();
                    let out = circ.eval_plain(&[a, bb, c], &[]);
                    let expect = a as u8 + bb as u8 + c as u8;
                    assert_eq!(out[0], expect & 1 == 1);
                    assert_eq!(out[1], expect >= 2);
                }
            }
        }
    }

    #[test]
    fn ripple_adder_exhaustive_4bit() {
        for x in 0u64..16 {
            for y in 0u64..16 {
                let mut b = CircuitBuilder::new();
                let wx = b.garbler_inputs(4);
                let wy = b.garbler_inputs(4);
                let sum = b.add(&wx, &wy);
                b.outputs(&sum);
                let consts = b.constant_wire_values();
                let c = b.build();
                let mut gv: Vec<bool> = (0..4).map(|i| (x >> i) & 1 == 1).collect();
                gv.extend((0..4).map(|i| (y >> i) & 1 == 1));
                gv.extend(consts);
                let out = c.eval_plain(&gv, &[]);
                assert_eq!(bits_to_u128(&out), (x + y) as u128, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn mux_selects() {
        for sel in [false, true] {
            let mut b = CircuitBuilder::new();
            let s = b.evaluator_input();
            let a = b.garbler_inputs(3);
            let c = b.garbler_inputs(3);
            let m = b.mux(s, &a, &c);
            b.outputs(&m);
            let circ = b.build();
            // a = 0b101, c = 0b010.
            let gv = vec![true, false, true, false, true, false];
            let out = circ.eval_plain(&gv, &[sel]);
            let expect = if sel { 0b101 } else { 0b010 };
            assert_eq!(bits_to_u128(&out), expect);
        }
    }

    #[test]
    fn selected_sum_circuit_plain_eval() {
        let values = [9u64, 3, 14, 7];
        let selects = [true, false, true, true];
        let (circuit, acc_bits) = selected_sum_circuit(4, 4);
        let gv = pack_selected_sum_garbler_values(&values, 4, &circuit);
        let out = circuit.eval_plain(&gv, selects.as_ref());
        assert_eq!(out.len(), acc_bits);
        assert_eq!(bits_to_u128(&out), 9 + 14 + 7);
    }

    #[test]
    fn selected_sum_max_values_no_overflow() {
        // All-ones values, all selected: the accumulator must hold n·(2^w−1).
        let n = 8;
        let w = 3;
        let values = vec![7u64; n];
        let (circuit, _) = selected_sum_circuit(n, w);
        let gv = pack_selected_sum_garbler_values(&values, w, &circuit);
        let out = circuit.eval_plain(&gv, &vec![true; n]);
        assert_eq!(bits_to_u128(&out), (7 * n) as u128);
    }

    #[test]
    fn selected_sum_nothing_selected() {
        let (circuit, _) = selected_sum_circuit(5, 8);
        let gv = pack_selected_sum_garbler_values(&[200, 100, 50, 25, 255], 8, &circuit);
        let out = circuit.eval_plain(&gv, &[false; 5]);
        assert_eq!(bits_to_u128(&out), 0);
    }

    #[test]
    fn gate_counts_scale_linearly() {
        let (c8, _) = selected_sum_circuit(8, 8);
        let (c16, _) = selected_sum_circuit(16, 8);
        // Doubling n roughly doubles the gate count (linear circuit).
        let ratio = c16.gates.len() as f64 / c8.gates.len() as f64;
        assert!((1.8..2.3).contains(&ratio), "ratio={ratio}");
    }
}
