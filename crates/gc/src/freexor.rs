//! Free-XOR garbling (Kolesnikov–Schneider 2008) — an ablation against
//! the classic 4-row-per-gate scheme in [`crate::garble`].
//!
//! A single global secret offset `Δ` (with its color bit forced to 1)
//! relates every wire's labels: `L₁ = L₀ ⊕ Δ`. XOR gates then cost
//! *nothing* — the evaluator just XORs the input labels — and only
//! AND/OR gates ship tables. The selected-sum circuit is XOR-heavy
//! (adders are ~60 % XOR), so the ablation bench shows a proportional
//! drop in garbled-table bytes and garbling time. The 2004-era Fairplay
//! used the classic scheme; free-XOR is the single most impactful
//! improvement published since, which is what makes it the interesting
//! design-choice ablation here.

use rand::RngCore;

use crate::circuit::{Circuit, GateOp};
use crate::error::GcError;
use crate::garble::{row_key, GarbledGate, GarblerSecrets, Label, WirePair, LABEL_LEN};

/// A free-XOR garbled circuit: tables only for non-XOR gates, in gate
/// order.
pub struct FreeXorCircuit {
    /// Tables for AND/OR gates, in circuit order (XOR gates skipped).
    pub tables: Vec<GarbledGate>,
    /// Decode bits (color of each output wire's 0-label).
    pub output_decode: Vec<bool>,
}

impl FreeXorCircuit {
    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        self.tables.len() * 4 * LABEL_LEN + self.output_decode.len().div_ceil(8)
    }
}

fn random_label(rng: &mut dyn RngCore) -> Label {
    let mut b = [0u8; LABEL_LEN];
    rng.fill_bytes(&mut b);
    Label(b)
}

/// Garbles with the free-XOR optimization.
pub fn garble_free_xor(
    circuit: &Circuit,
    rng: &mut dyn RngCore,
) -> (FreeXorCircuit, GarblerSecrets) {
    // Global delta with color bit 1 (so L0/L1 colors always differ).
    let mut delta = random_label(rng);
    delta.0[LABEL_LEN - 1] |= 1;

    let pair_from_zero = |zero: Label| WirePair {
        zero,
        one: zero.xor(&delta.0),
    };

    let mut wires: Vec<Option<WirePair>> = vec![None; circuit.wire_count];
    for &w in circuit
        .garbler_inputs
        .iter()
        .chain(&circuit.evaluator_inputs)
    {
        wires[w] = Some(pair_from_zero(random_label(rng)));
    }

    let mut tables = Vec::new();
    for (gi, gate) in circuit.gates.iter().enumerate() {
        let a = wires[gate.a].expect("topological order");
        let b = wires[gate.b].expect("topological order");
        match gate.op {
            GateOp::Xor => {
                // Free: L0_out = L0_a ⊕ L0_b; deltas cancel pairwise.
                let zero = a.zero.xor(&b.zero.0);
                wires[gate.out] = Some(pair_from_zero(zero));
            }
            GateOp::And | GateOp::Or => {
                let out = pair_from_zero(random_label(rng));
                wires[gate.out] = Some(out);
                let mut rows = [[0u8; LABEL_LEN]; 4];
                for va in [false, true] {
                    for vb in [false, true] {
                        let la = a.select(va);
                        let lb = b.select(vb);
                        let lo = out.select(gate.op.eval(va, vb));
                        let idx = ((la.color() as usize) << 1) | lb.color() as usize;
                        rows[idx] = lo.xor(&row_key(&la, &lb, gi)).0;
                    }
                }
                tables.push(GarbledGate { rows });
            }
        }
    }

    let output_decode = circuit
        .outputs
        .iter()
        .map(|&w| wires[w].expect("output wire garbled").zero.color())
        .collect();

    let secrets = GarblerSecrets {
        wires: wires
            .into_iter()
            .map(|w| w.expect("every wire garbled"))
            .collect(),
    };
    (
        FreeXorCircuit {
            tables,
            output_decode,
        },
        secrets,
    )
}

/// Evaluates a free-XOR garbled circuit.
///
/// # Errors
/// [`GcError::InputArity`] / [`GcError::Evaluation`] as in the classic
/// evaluator.
pub fn evaluate_free_xor(
    circuit: &Circuit,
    garbled: &FreeXorCircuit,
    garbler_labels: &[Label],
    evaluator_labels: &[Label],
) -> Result<Vec<bool>, GcError> {
    if garbler_labels.len() != circuit.garbler_inputs.len()
        || evaluator_labels.len() != circuit.evaluator_inputs.len()
    {
        return Err(GcError::InputArity {
            expected: circuit.garbler_inputs.len() + circuit.evaluator_inputs.len(),
            got: garbler_labels.len() + evaluator_labels.len(),
        });
    }
    let expected_tables = circuit.gates.iter().filter(|g| g.op != GateOp::Xor).count();
    if garbled.tables.len() != expected_tables {
        return Err(GcError::Evaluation("table count mismatch"));
    }

    let mut labels: Vec<Option<Label>> = vec![None; circuit.wire_count];
    for (&w, &l) in circuit.garbler_inputs.iter().zip(garbler_labels) {
        labels[w] = Some(l);
    }
    for (&w, &l) in circuit.evaluator_inputs.iter().zip(evaluator_labels) {
        labels[w] = Some(l);
    }

    let mut next_table = 0usize;
    for (gi, gate) in circuit.gates.iter().enumerate() {
        let la = labels[gate.a].ok_or(GcError::Evaluation("unset gate input"))?;
        let lb = labels[gate.b].ok_or(GcError::Evaluation("unset gate input"))?;
        let out = match gate.op {
            GateOp::Xor => la.xor(&lb.0),
            GateOp::And | GateOp::Or => {
                let idx = ((la.color() as usize) << 1) | lb.color() as usize;
                let row = &garbled.tables[next_table].rows[idx];
                next_table += 1;
                Label(*row).xor(&row_key(&la, &lb, gi))
            }
        };
        labels[gate.out] = Some(out);
    }

    circuit
        .outputs
        .iter()
        .zip(garbled.output_decode.iter())
        .map(|(&w, &decode)| {
            let l = labels[w].ok_or(GcError::Evaluation("unset output wire"))?;
            Ok(l.color() ^ decode)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{pack_selected_sum_garbler_values, selected_sum_circuit, CircuitBuilder};
    use crate::circuit::bits_to_u128;
    use crate::garble::garble;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_fx(circuit: &Circuit, gv: &[bool], ev: &[bool], rng: &mut StdRng) -> Vec<bool> {
        let (garbled, secrets) = garble_free_xor(circuit, rng);
        let gl = secrets.garbler_input_labels(circuit, gv).unwrap();
        let el: Vec<Label> = ev
            .iter()
            .enumerate()
            .map(|(i, &v)| secrets.evaluator_input_pair(circuit, i).select(v))
            .collect();
        evaluate_free_xor(circuit, &garbled, &gl, &el).unwrap()
    }

    #[test]
    fn single_gates_all_inputs() {
        let mut rng = StdRng::seed_from_u64(61);
        for op in [GateOp::And, GateOp::Or, GateOp::Xor] {
            for a in [false, true] {
                for bv in [false, true] {
                    let mut b = CircuitBuilder::new();
                    let wa = b.garbler_input();
                    let wb = b.evaluator_input();
                    let out = match op {
                        GateOp::And => b.and(wa, wb),
                        GateOp::Or => b.or(wa, wb),
                        GateOp::Xor => b.xor(wa, wb),
                    };
                    b.outputs(&[out]);
                    let c = b.build();
                    assert_eq!(run_fx(&c, &[a], &[bv], &mut rng), vec![op.eval(a, bv)]);
                }
            }
        }
    }

    #[test]
    fn matches_classic_garbling_on_selected_sum() {
        let mut rng = StdRng::seed_from_u64(62);
        let (circuit, _) = selected_sum_circuit(6, 8);
        let values = [10u64, 250, 3, 77, 128, 9];
        let gv = pack_selected_sum_garbler_values(&values, 8, &circuit);
        for _ in 0..3 {
            let sel: Vec<bool> = (0..6).map(|_| rng.gen()).collect();

            let fx = run_fx(&circuit, &gv, &sel, &mut rng);
            let (classic, secrets) = garble(&circuit, &mut rng);
            let gl = secrets.garbler_input_labels(&circuit, &gv).unwrap();
            let el: Vec<Label> = sel
                .iter()
                .enumerate()
                .map(|(i, &v)| secrets.evaluator_input_pair(&circuit, i).select(v))
                .collect();
            let cl = crate::garble::evaluate(&circuit, &classic, &gl, &el).unwrap();

            assert_eq!(fx, cl);
            assert_eq!(fx, circuit.eval_plain(&gv, &sel));
        }
    }

    #[test]
    fn table_bytes_shrink_by_xor_fraction() {
        let mut rng = StdRng::seed_from_u64(63);
        let (circuit, _) = selected_sum_circuit(16, 16);
        let (classic, _) = garble(&circuit, &mut rng);
        let (fx, _) = garble_free_xor(&circuit, &mut rng);
        let nonlinear = circuit.nonlinear_gates();
        let total = circuit.gates.len();
        assert!(fx.wire_size() < classic.wire_size());
        // Exact accounting: fx tables = nonlinear gates only.
        assert_eq!(fx.tables.len(), nonlinear);
        let expect_ratio = nonlinear as f64 / total as f64;
        let actual_ratio = fx.tables.len() as f64 / total as f64;
        assert!((actual_ratio - expect_ratio).abs() < 1e-9);
        // Adders are XOR-heavy: at least a third of the tables vanish.
        assert!(actual_ratio < 0.67, "xor fraction too low: {actual_ratio}");
    }

    #[test]
    fn selected_sum_value_correct() {
        let mut rng = StdRng::seed_from_u64(64);
        let (circuit, _) = selected_sum_circuit(5, 10);
        let values = [1000u64, 2, 512, 77, 300];
        let gv = pack_selected_sum_garbler_values(&values, 10, &circuit);
        let sel = [true, false, true, false, true];
        let out = run_fx(&circuit, &gv, &sel, &mut rng);
        assert_eq!(bits_to_u128(&out), 1000 + 512 + 300);
    }

    #[test]
    fn arity_and_table_count_checked() {
        let mut rng = StdRng::seed_from_u64(65);
        let mut b = CircuitBuilder::new();
        let wa = b.garbler_input();
        let wb = b.evaluator_input();
        let o = b.and(wa, wb);
        b.outputs(&[o]);
        let c = b.build();
        let (garbled, _) = garble_free_xor(&c, &mut rng);
        assert!(evaluate_free_xor(&c, &garbled, &[], &[]).is_err());
        let empty = FreeXorCircuit {
            tables: vec![],
            output_decode: vec![false],
        };
        let l = Label([0; LABEL_LEN]);
        assert!(evaluate_free_xor(&c, &empty, &[l], &[l]).is_err());
    }
}
