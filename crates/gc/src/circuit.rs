//! Boolean circuit representation and plaintext evaluation.
//!
//! Circuits are gate lists in topological order over a flat wire space.
//! Wires are created by [`crate::builder::CircuitBuilder`]; inputs are
//! split between the **garbler** (the database server) and the
//! **evaluator** (the querying client), matching Yao's two-party setting.

/// A wire identifier (index into the circuit's wire space).
pub type WireId = usize;

/// Binary gate operations supported by the garbling scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateOp {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical XOR.
    Xor,
}

impl GateOp {
    /// Truth-table evaluation.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateOp::And => a & b,
            GateOp::Or => a | b,
            GateOp::Xor => a ^ b,
        }
    }
}

/// A two-input gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gate {
    /// Operation.
    pub op: GateOp,
    /// Left input wire.
    pub a: WireId,
    /// Right input wire.
    pub b: WireId,
    /// Output wire.
    pub out: WireId,
}

/// A boolean circuit with two-party input ownership.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    /// Total number of wires.
    pub wire_count: usize,
    /// Wires owned by the garbler (server); values supplied at garble
    /// time.
    pub garbler_inputs: Vec<WireId>,
    /// Wires owned by the evaluator (client); labels fetched via OT.
    pub evaluator_inputs: Vec<WireId>,
    /// Gates in topological order (inputs of gate `i` are input wires or
    /// outputs of gates `< i`).
    pub gates: Vec<Gate>,
    /// Output wires, LSB first for numeric outputs.
    pub outputs: Vec<WireId>,
}

impl Circuit {
    /// Number of AND/OR gates (the expensive ones in most garbling
    /// schemes; here all gates cost one 4-row table, but the split is
    /// still interesting to report).
    pub fn nonlinear_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.op != GateOp::Xor).count()
    }

    /// Plaintext evaluation, for testing and as the correctness oracle.
    ///
    /// `garbler_values[i]` corresponds to `garbler_inputs[i]`, likewise
    /// for the evaluator. Returns output wire values in `outputs` order.
    ///
    /// # Panics
    /// Panics if input lengths disagree with the circuit or a gate reads
    /// an unset wire (builder bugs).
    pub fn eval_plain(&self, garbler_values: &[bool], evaluator_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            garbler_values.len(),
            self.garbler_inputs.len(),
            "garbler input arity"
        );
        assert_eq!(
            evaluator_values.len(),
            self.evaluator_inputs.len(),
            "evaluator input arity"
        );
        let mut wires: Vec<Option<bool>> = vec![None; self.wire_count];
        for (&w, &v) in self.garbler_inputs.iter().zip(garbler_values) {
            wires[w] = Some(v);
        }
        for (&w, &v) in self.evaluator_inputs.iter().zip(evaluator_values) {
            wires[w] = Some(v);
        }
        for g in &self.gates {
            let a = wires[g.a].expect("gate input set (topological order)");
            let b = wires[g.b].expect("gate input set (topological order)");
            wires[g.out] = Some(g.op.eval(a, b));
        }
        self.outputs
            .iter()
            .map(|&w| wires[w].expect("output wire set"))
            .collect()
    }
}

/// Converts a little-endian bit vector into a u128.
pub fn bits_to_u128(bits: &[bool]) -> u128 {
    bits.iter()
        .enumerate()
        .fold(0u128, |acc, (i, &b)| acc | ((b as u128) << i))
}

/// Converts the low `width` bits of `v` into a little-endian bit vector.
pub fn u128_to_bits(v: u128, width: usize) -> Vec<bool> {
    (0..width).map(|i| (v >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_ops() {
        assert!(GateOp::And.eval(true, true));
        assert!(!GateOp::And.eval(true, false));
        assert!(GateOp::Or.eval(true, false));
        assert!(!GateOp::Or.eval(false, false));
        assert!(GateOp::Xor.eval(true, false));
        assert!(!GateOp::Xor.eval(true, true));
    }

    #[test]
    fn bit_codecs() {
        assert_eq!(bits_to_u128(&[true, false, true]), 0b101);
        assert_eq!(u128_to_bits(0b101, 3), vec![true, false, true]);
        assert_eq!(u128_to_bits(0, 4), vec![false; 4]);
        let v = 0xdead_beefu128;
        assert_eq!(bits_to_u128(&u128_to_bits(v, 64)), v);
    }

    #[test]
    fn manual_circuit_eval() {
        // out = (g0 AND e0) XOR e1.
        let c = Circuit {
            wire_count: 5,
            garbler_inputs: vec![0],
            evaluator_inputs: vec![1, 2],
            gates: vec![
                Gate {
                    op: GateOp::And,
                    a: 0,
                    b: 1,
                    out: 3,
                },
                Gate {
                    op: GateOp::Xor,
                    a: 3,
                    b: 2,
                    out: 4,
                },
            ],
            outputs: vec![4],
        };
        for g0 in [false, true] {
            for e0 in [false, true] {
                for e1 in [false, true] {
                    let out = c.eval_plain(&[g0], &[e0, e1]);
                    assert_eq!(out, vec![(g0 & e0) ^ e1]);
                }
            }
        }
        assert_eq!(c.nonlinear_gates(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_input_arity_panics() {
        let c = Circuit {
            wire_count: 1,
            garbler_inputs: vec![0],
            ..Default::default()
        };
        let _ = c.eval_plain(&[], &[]);
    }
}
