//! Error type for the garbled-circuit engine.

use std::fmt;

use pps_crypto::CryptoError;

/// Errors surfaced while garbling, transferring, or evaluating circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcError {
    /// Input value/label count did not match the circuit.
    InputArity {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// Evaluation failed structurally (corrupted circuit or tables).
    Evaluation(&'static str),
    /// Oblivious-transfer failure.
    Ot(&'static str),
    /// Underlying cryptographic failure.
    Crypto(CryptoError),
    /// Invalid circuit parameters.
    Config(String),
}

impl fmt::Display for GcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InputArity { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            Self::Evaluation(why) => write!(f, "evaluation failed: {why}"),
            Self::Ot(why) => write!(f, "oblivious transfer failed: {why}"),
            Self::Crypto(e) => write!(f, "crypto error: {e}"),
            Self::Config(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

impl std::error::Error for GcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for GcError {
    fn from(e: CryptoError) -> Self {
        Self::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(GcError::InputArity {
            expected: 3,
            got: 1
        }
        .to_string()
        .contains('3'));
        assert!(GcError::Ot("too wide").to_string().contains("too wide"));
    }
}
