//! 1-of-2 oblivious transfer from additively homomorphic encryption.
//!
//! The receiver (GC evaluator) holds a choice bit `b` and a Paillier
//! keypair; the sender (GC garbler) holds two messages `m₀, m₁` (wire
//! labels). The receiver sends `E(b)`; the sender replies with a
//! rerandomized `E(b)^(m₁−m₀) · E(m₀) = E(b·(m₁−m₀) + m₀) = E(m_b)`.
//!
//! Security (semi-honest): the sender sees only a semantically secure
//! encryption of `b`; the receiver decrypts exactly `m_b` and, because
//! the reply is a fresh-looking encryption of a single value, learns
//! nothing about `m_{1−b}`. Messages must fit the plaintext space —
//! 128-bit labels under ≥512-bit keys always do.

use pps_bignum::Uint;
use pps_crypto::{Ciphertext, PaillierKeypair, PaillierPublicKey};
use rand::RngCore;

use crate::error::GcError;
use crate::garble::{Label, WirePair, LABEL_LEN};

/// The receiver's first move: an encryption of the choice bit.
pub struct OtRequest {
    /// `E(b)` under the receiver's key.
    pub encrypted_choice: Ciphertext,
}

/// Builds OT requests for a vector of choice bits.
///
/// # Errors
/// Propagates encryption failures.
pub fn ot_request(
    keypair: &PaillierKeypair,
    bits: &[bool],
    rng: &mut dyn RngCore,
) -> Result<Vec<OtRequest>, GcError> {
    bits.iter()
        .map(|&b| {
            let ct = keypair.public.encrypt(&Uint::from_u64(b as u64), rng)?;
            Ok(OtRequest {
                encrypted_choice: ct,
            })
        })
        .collect()
}

/// The sender's reply for one transfer: `E(m_b)`.
pub struct OtReply {
    /// Encrypted selected message.
    pub ciphertext: Ciphertext,
}

/// Sender side: answers one request with the label pair `(m₀, m₁)`.
///
/// # Errors
/// Propagates homomorphic-operation failures.
pub fn ot_reply(
    key: &PaillierPublicKey,
    request: &OtRequest,
    pair: &WirePair,
    rng: &mut dyn RngCore,
) -> Result<OtReply, GcError> {
    // Labels must embed losslessly in the plaintext space: a 128-bit
    // label needs N > 2^128, i.e. a key of at least 136 bits.
    if key.key_bits() <= LABEL_LEN * 8 {
        return Err(GcError::Ot("Paillier key too small to carry wire labels"));
    }
    let m0 = Uint::from_bytes_be(&pair.zero.0);
    let m1 = Uint::from_bytes_be(&pair.one.0);
    // d = (m1 - m0) mod N.
    let d = m1
        .mod_sub(&m0, key.n())
        .map_err(pps_crypto::CryptoError::from)?;
    let scaled = key.mul_plain(&request.encrypted_choice, &d)?;
    let shifted = key.add_plain(&scaled, &m0)?;
    // Rerandomize so the reply's randomness is independent of E(b)'s.
    let fresh = key.rerandomize(&shifted, rng)?;
    Ok(OtReply { ciphertext: fresh })
}

/// Receiver side: decrypts one reply into the chosen label.
///
/// # Errors
/// [`GcError::Ot`] if the decrypted value does not fit a label (sender
/// misbehavior outside the semi-honest model).
pub fn ot_receive(keypair: &PaillierKeypair, reply: &OtReply) -> Result<Label, GcError> {
    let m = keypair.secret.decrypt(&reply.ciphertext)?;
    let bytes = m
        .to_bytes_be_padded(LABEL_LEN)
        .map_err(|_| GcError::Ot("transferred message exceeds label width"))?;
    let mut out = [0u8; LABEL_LEN];
    out.copy_from_slice(&bytes);
    Ok(Label(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(rng: &mut StdRng) -> PaillierKeypair {
        PaillierKeypair::generate(192, rng).unwrap()
    }

    fn random_pair(rng: &mut StdRng) -> WirePair {
        // Build via the garbler on a 1-wire circuit to reuse the private
        // constructor path.
        use crate::builder::CircuitBuilder;
        let mut b = CircuitBuilder::new();
        let w = b.evaluator_input();
        b.outputs(&[w]);
        let c = b.build();
        let (_, secrets) = crate::garble::garble(&c, rng);
        secrets.evaluator_input_pair(&c, 0)
    }

    #[test]
    fn transfers_chosen_label() {
        let mut rng = StdRng::seed_from_u64(21);
        let kp = keypair(&mut rng);
        let pair = random_pair(&mut rng);
        for b in [false, true] {
            let reqs = ot_request(&kp, &[b], &mut rng).unwrap();
            let reply = ot_reply(&kp.public, &reqs[0], &pair, &mut rng).unwrap();
            let got = ot_receive(&kp, &reply).unwrap();
            assert_eq!(got, pair.select(b), "b={b}");
        }
    }

    #[test]
    fn batch_transfers() {
        let mut rng = StdRng::seed_from_u64(22);
        let kp = keypair(&mut rng);
        let bits = [true, false, false, true, true];
        let pairs: Vec<WirePair> = (0..bits.len()).map(|_| random_pair(&mut rng)).collect();
        let reqs = ot_request(&kp, &bits, &mut rng).unwrap();
        for ((req, pair), &b) in reqs.iter().zip(&pairs).zip(&bits) {
            let reply = ot_reply(&kp.public, req, pair, &mut rng).unwrap();
            assert_eq!(ot_receive(&kp, &reply).unwrap(), pair.select(b));
        }
    }

    #[test]
    fn replies_are_rerandomized() {
        // Two replies to the same request with the same pair must differ
        // as ciphertexts (unlinkability for the receiver's traffic).
        let mut rng = StdRng::seed_from_u64(23);
        let kp = keypair(&mut rng);
        let pair = random_pair(&mut rng);
        let reqs = ot_request(&kp, &[true], &mut rng).unwrap();
        let r1 = ot_reply(&kp.public, &reqs[0], &pair, &mut rng).unwrap();
        let r2 = ot_reply(&kp.public, &reqs[0], &pair, &mut rng).unwrap();
        assert_ne!(r1.ciphertext, r2.ciphertext);
        assert_eq!(ot_receive(&kp, &r1).unwrap(), ot_receive(&kp, &r2).unwrap());
    }
}
