//! End-to-end garbled-circuit selected sum, with cost accounting.
//!
//! This is the general-SMC comparison point of the paper's §2: Yao's
//! protocol computes the same selected sum with *no* homomorphic
//! structure, at the price of a garbled table per gate (linear in `n` in
//! table bytes, but with enormous constants) and one oblivious transfer
//! per client input bit. The paper cites Fairplay [14] needing "at least
//! 15 minutes for a database of only 1,000 elements" [16]; [`GcReport`]
//! lets the figure harness reproduce that qualitative gap against the
//! homomorphic protocol.

use std::time::{Duration, Instant};

use pps_crypto::PaillierKeypair;
use rand::RngCore;

use crate::builder::{pack_selected_sum_garbler_values, selected_sum_circuit};
use crate::circuit::bits_to_u128;
use crate::error::GcError;
use crate::garble::{evaluate, garble, Label, LABEL_LEN};
use crate::ot::{ot_receive, ot_reply, ot_request};

/// Cost breakdown of one garbled-circuit execution.
#[derive(Clone, Debug)]
pub struct GcReport {
    /// Database size.
    pub n: usize,
    /// Bits per database value.
    pub value_bits: usize,
    /// Total gates in the circuit.
    pub gates: usize,
    /// Time the server spent garbling.
    pub garble_time: Duration,
    /// Time spent on all oblivious transfers (both sides).
    pub ot_time: Duration,
    /// Time the client spent evaluating.
    pub eval_time: Duration,
    /// Bytes of garbled tables + decode info shipped server → client.
    pub table_bytes: usize,
    /// Bytes of garbler input labels shipped server → client.
    pub garbler_label_bytes: usize,
    /// Bytes of OT traffic (requests + replies, both directions).
    pub ot_bytes: usize,
    /// The computed selected sum.
    pub result: u128,
}

impl GcReport {
    /// Total compute time across both parties.
    pub fn total_time(&self) -> Duration {
        self.garble_time + self.ot_time + self.eval_time
    }

    /// Total protocol bytes.
    pub fn total_bytes(&self) -> usize {
        self.table_bytes + self.garbler_label_bytes + self.ot_bytes
    }
}

/// Runs Yao's protocol for the selected sum: server holds `values`
/// (each < 2^`value_bits`), client holds `selection` bits.
///
/// `ot_keypair` is the client's Paillier keypair used for the label OTs
/// (key generation is excluded from the timing, matching how the paper
/// accounts session setup).
///
/// # Errors
/// Configuration errors (empty input, oversized values), plus any
/// garbling/OT/evaluation failure.
pub fn run_gc_selected_sum(
    values: &[u64],
    selection: &[bool],
    value_bits: usize,
    ot_keypair: &PaillierKeypair,
    rng: &mut dyn RngCore,
) -> Result<GcReport, GcError> {
    if values.is_empty() || values.len() != selection.len() {
        return Err(GcError::Config(
            "values/selection must be non-empty and equal-length".into(),
        ));
    }
    if value_bits == 0 || value_bits > 63 {
        return Err(GcError::Config("value_bits must be in 1..=63".into()));
    }
    if let Some(&v) = values.iter().find(|&&v| v >> value_bits != 0) {
        return Err(GcError::Config(format!(
            "value {v} exceeds {value_bits} bits"
        )));
    }

    let n = values.len();
    let (circuit, _acc_bits) = selected_sum_circuit(n, value_bits);

    // --- Server: garble and prepare its input labels. ---
    let start = Instant::now();
    let (garbled, secrets) = garble(&circuit, rng);
    let gv = pack_selected_sum_garbler_values(values, value_bits, &circuit);
    let garbler_labels = secrets.garbler_input_labels(&circuit, &gv)?;
    let garble_time = start.elapsed();

    // --- OT: client fetches one label per selection bit. ---
    let start = Instant::now();
    let requests = ot_request(ot_keypair, selection, rng)?;
    let mut evaluator_labels: Vec<Label> = Vec::with_capacity(n);
    let mut ot_bytes = 0usize;
    let ct_bytes = ot_keypair.public.ciphertext_bytes();
    for (i, req) in requests.iter().enumerate() {
        let pair = secrets.evaluator_input_pair(&circuit, i);
        let reply = ot_reply(&ot_keypair.public, req, &pair, rng)?;
        evaluator_labels.push(ot_receive(ot_keypair, &reply)?);
        ot_bytes += 2 * ct_bytes; // request + reply
    }
    let ot_time = start.elapsed();

    // --- Client: evaluate the garbled circuit. ---
    let start = Instant::now();
    let out_bits = evaluate(&circuit, &garbled, &garbler_labels, &evaluator_labels)?;
    let eval_time = start.elapsed();

    let result = bits_to_u128(&out_bits);

    // Correctness oracle.
    let expected: u128 = values
        .iter()
        .zip(selection)
        .filter(|(_, &s)| s)
        .map(|(&v, _)| v as u128)
        .sum();
    if result != expected {
        return Err(GcError::Evaluation(
            "garbled result disagrees with plaintext oracle",
        ));
    }

    Ok(GcReport {
        n,
        value_bits,
        gates: circuit.gates.len(),
        garble_time,
        ot_time,
        eval_time,
        table_bytes: garbled.wire_size(),
        garbler_label_bytes: garbler_labels.len() * LABEL_LEN,
        ot_bytes,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keypair(rng: &mut StdRng) -> PaillierKeypair {
        PaillierKeypair::generate(192, rng).unwrap()
    }

    #[test]
    fn small_end_to_end() {
        let mut rng = StdRng::seed_from_u64(31);
        let kp = keypair(&mut rng);
        let values = [9u64, 3, 14, 7];
        let selection = [true, false, true, true];
        let r = run_gc_selected_sum(&values, &selection, 4, &kp, &mut rng).unwrap();
        assert_eq!(r.result, 30);
        assert!(r.gates > 0);
        assert!(r.table_bytes >= r.gates * 4 * LABEL_LEN);
    }

    #[test]
    fn random_instances_match_oracle() {
        let mut rng = StdRng::seed_from_u64(32);
        let kp = keypair(&mut rng);
        for _ in 0..5 {
            let n = rng.gen_range(1..10);
            let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..256)).collect();
            let selection: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let r = run_gc_selected_sum(&values, &selection, 8, &kp, &mut rng).unwrap();
            let expect: u128 = values
                .iter()
                .zip(&selection)
                .filter(|(_, &s)| s)
                .map(|(&v, _)| v as u128)
                .sum();
            assert_eq!(r.result, expect);
        }
    }

    #[test]
    fn nothing_and_everything_selected() {
        let mut rng = StdRng::seed_from_u64(33);
        let kp = keypair(&mut rng);
        let values = [5u64, 6, 7];
        let none = run_gc_selected_sum(&values, &[false; 3], 3, &kp, &mut rng).unwrap();
        assert_eq!(none.result, 0);
        let all = run_gc_selected_sum(&values, &[true; 3], 3, &kp, &mut rng).unwrap();
        assert_eq!(all.result, 18);
    }

    #[test]
    fn config_validation() {
        let mut rng = StdRng::seed_from_u64(34);
        let kp = keypair(&mut rng);
        assert!(run_gc_selected_sum(&[], &[], 4, &kp, &mut rng).is_err());
        assert!(run_gc_selected_sum(&[1], &[true, false], 4, &kp, &mut rng).is_err());
        assert!(
            run_gc_selected_sum(&[16], &[true], 4, &kp, &mut rng).is_err(),
            "16 needs 5 bits"
        );
        assert!(run_gc_selected_sum(&[1], &[true], 0, &kp, &mut rng).is_err());
        assert!(run_gc_selected_sum(&[1], &[true], 64, &kp, &mut rng).is_err());
    }

    #[test]
    fn cost_scales_linearly_in_n() {
        let mut rng = StdRng::seed_from_u64(35);
        let kp = keypair(&mut rng);
        let v8: Vec<u64> = (0..8).collect();
        let v16: Vec<u64> = (0..16).collect();
        let r8 = run_gc_selected_sum(&v8, &[true; 8], 8, &kp, &mut rng).unwrap();
        let r16 = run_gc_selected_sum(&v16, &[true; 16], 8, &kp, &mut rng).unwrap();
        let ratio = r16.table_bytes as f64 / r8.table_bytes as f64;
        assert!(
            (1.7..2.4).contains(&ratio),
            "table bytes should scale ~linearly, ratio={ratio}"
        );
        assert_eq!(r16.ot_bytes, 2 * r8.ot_bytes);
    }
}
