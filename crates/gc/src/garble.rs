//! Point-and-permute garbling (Yao's protocol, semi-honest).
//!
//! Each wire gets two 16-byte labels whose lowest bit of the last byte is
//! the public "color" (permute) bit, with opposite colors on the 0- and
//! 1-labels. Every gate is a four-row table; row position is chosen by
//! the input colors, and each row encrypts the output label under
//! `H(label_a ‖ label_b ‖ gate_id)` with SHA-256 as the KDF — the classic
//! construction Fairplay (the paper's general-SMC reference point [14])
//! also used, modulo hash choice.

use pps_crypto::Sha256;
use rand::RngCore;

use crate::circuit::Circuit;
use crate::error::GcError;

/// Label width in bytes (128-bit security labels).
pub const LABEL_LEN: usize = 16;

/// A wire label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(pub [u8; LABEL_LEN]);

impl Label {
    /// The public color (permute) bit.
    pub fn color(&self) -> bool {
        self.0[LABEL_LEN - 1] & 1 == 1
    }

    fn random(rng: &mut dyn RngCore) -> Self {
        let mut b = [0u8; LABEL_LEN];
        rng.fill_bytes(&mut b);
        Label(b)
    }

    fn with_color(mut self, color: bool) -> Self {
        self.0[LABEL_LEN - 1] = (self.0[LABEL_LEN - 1] & !1) | color as u8;
        self
    }

    pub(crate) fn xor(&self, other: &[u8; LABEL_LEN]) -> Label {
        let mut out = [0u8; LABEL_LEN];
        for i in 0..LABEL_LEN {
            out[i] = self.0[i] ^ other[i];
        }
        Label(out)
    }
}

/// The two labels of one wire.
#[derive(Clone, Copy, Debug)]
pub struct WirePair {
    /// Label carrying semantic 0.
    pub zero: Label,
    /// Label carrying semantic 1.
    pub one: Label,
}

impl WirePair {
    fn random(rng: &mut dyn RngCore) -> Self {
        let c = rng.next_u32() & 1 == 1;
        WirePair {
            zero: Label::random(rng).with_color(c),
            one: Label::random(rng).with_color(!c),
        }
    }

    /// The label for semantic value `v`.
    pub fn select(&self, v: bool) -> Label {
        if v {
            self.one
        } else {
            self.zero
        }
    }
}

/// One garbled gate: four rows indexed by the input colors.
#[derive(Clone, Debug)]
pub struct GarbledGate {
    pub(crate) rows: [[u8; LABEL_LEN]; 4],
}

/// A garbled circuit ready for transfer to the evaluator.
pub struct GarbledCircuit {
    /// Garbled tables, aligned with `circuit.gates`.
    pub gates: Vec<GarbledGate>,
    /// Color bit of each output wire's 0-label (the decode table).
    pub output_decode: Vec<bool>,
}

impl GarbledCircuit {
    /// Serialized size in bytes: 4 rows per gate plus one decode bit per
    /// output (rounded up to bytes).
    pub fn wire_size(&self) -> usize {
        self.gates.len() * 4 * LABEL_LEN + self.output_decode.len().div_ceil(8)
    }
}

/// Secrets the garbler keeps: every wire's label pair.
pub struct GarblerSecrets {
    /// Label pairs indexed by wire id.
    pub wires: Vec<WirePair>,
}

impl GarblerSecrets {
    /// Labels the garbler sends for its own input values.
    ///
    /// # Errors
    /// [`GcError::InputArity`] on length mismatch.
    pub fn garbler_input_labels(
        &self,
        circuit: &Circuit,
        values: &[bool],
    ) -> Result<Vec<Label>, GcError> {
        if values.len() != circuit.garbler_inputs.len() {
            return Err(GcError::InputArity {
                expected: circuit.garbler_inputs.len(),
                got: values.len(),
            });
        }
        Ok(circuit
            .garbler_inputs
            .iter()
            .zip(values)
            .map(|(&w, &v)| self.wires[w].select(v))
            .collect())
    }

    /// The `(zero, one)` label pair for evaluator input `i` — the OT
    /// sender's two messages.
    pub fn evaluator_input_pair(&self, circuit: &Circuit, i: usize) -> WirePair {
        self.wires[circuit.evaluator_inputs[i]]
    }
}

/// KDF for one table row: `H(a ‖ b ‖ gate_index)` truncated to a label.
pub(crate) fn row_key(a: &Label, b: &Label, gate_index: usize) -> [u8; LABEL_LEN] {
    let mut h = Sha256::new();
    h.update(&a.0);
    h.update(&b.0);
    h.update(&(gate_index as u64).to_be_bytes());
    let digest = h.finalize();
    let mut out = [0u8; LABEL_LEN];
    out.copy_from_slice(&digest[..LABEL_LEN]);
    out
}

/// Garbles `circuit`, producing the transferable tables and the garbler's
/// secrets.
pub fn garble(circuit: &Circuit, rng: &mut dyn RngCore) -> (GarbledCircuit, GarblerSecrets) {
    let wires: Vec<WirePair> = (0..circuit.wire_count)
        .map(|_| WirePair::random(rng))
        .collect();

    let mut gates = Vec::with_capacity(circuit.gates.len());
    for (gi, gate) in circuit.gates.iter().enumerate() {
        let mut rows = [[0u8; LABEL_LEN]; 4];
        for va in [false, true] {
            for vb in [false, true] {
                let la = wires[gate.a].select(va);
                let lb = wires[gate.b].select(vb);
                let out_label = wires[gate.out].select(gate.op.eval(va, vb));
                let idx = ((la.color() as usize) << 1) | lb.color() as usize;
                rows[idx] = out_label.xor(&row_key(&la, &lb, gi)).0;
            }
        }
        gates.push(GarbledGate { rows });
    }

    let output_decode = circuit
        .outputs
        .iter()
        .map(|&w| wires[w].zero.color())
        .collect();

    (
        GarbledCircuit {
            gates,
            output_decode,
        },
        GarblerSecrets { wires },
    )
}

/// Evaluates a garbled circuit given one label per input wire.
///
/// `garbler_labels` follow `circuit.garbler_inputs` order and
/// `evaluator_labels` follow `circuit.evaluator_inputs` order (obtained
/// via OT). Returns the decoded output bits.
///
/// # Errors
/// [`GcError::InputArity`] on label-count mismatches;
/// [`GcError::Evaluation`] if a gate reads a wire with no label (only
/// possible with a corrupted circuit description).
pub fn evaluate(
    circuit: &Circuit,
    garbled: &GarbledCircuit,
    garbler_labels: &[Label],
    evaluator_labels: &[Label],
) -> Result<Vec<bool>, GcError> {
    if garbler_labels.len() != circuit.garbler_inputs.len()
        || evaluator_labels.len() != circuit.evaluator_inputs.len()
    {
        return Err(GcError::InputArity {
            expected: circuit.garbler_inputs.len() + circuit.evaluator_inputs.len(),
            got: garbler_labels.len() + evaluator_labels.len(),
        });
    }
    if garbled.gates.len() != circuit.gates.len() {
        return Err(GcError::Evaluation("table count mismatch"));
    }

    let mut labels: Vec<Option<Label>> = vec![None; circuit.wire_count];
    for (&w, &l) in circuit.garbler_inputs.iter().zip(garbler_labels) {
        labels[w] = Some(l);
    }
    for (&w, &l) in circuit.evaluator_inputs.iter().zip(evaluator_labels) {
        labels[w] = Some(l);
    }

    for (gi, gate) in circuit.gates.iter().enumerate() {
        let la = labels[gate.a].ok_or(GcError::Evaluation("unset gate input"))?;
        let lb = labels[gate.b].ok_or(GcError::Evaluation("unset gate input"))?;
        let idx = ((la.color() as usize) << 1) | lb.color() as usize;
        let row = &garbled.gates[gi].rows[idx];
        let out = Label(*row).xor(&row_key(&la, &lb, gi));
        labels[gate.out] = Some(out);
    }

    circuit
        .outputs
        .iter()
        .zip(garbled.output_decode.iter())
        .map(|(&w, &decode)| {
            let l = labels[w].ok_or(GcError::Evaluation("unset output wire"))?;
            Ok(l.color() ^ decode)
        })
        .collect()
}

impl From<[u8; LABEL_LEN]> for Label {
    fn from(b: [u8; LABEL_LEN]) -> Self {
        Label(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::circuit::bits_to_u128;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x6c)
    }

    /// Garble + OT-free evaluate helper: both parties' plaintext values
    /// are known to the test, which picks labels directly.
    fn run(circuit: &Circuit, gv: &[bool], ev: &[bool], rng: &mut StdRng) -> Vec<bool> {
        let (garbled, secrets) = garble(circuit, rng);
        let gl = secrets.garbler_input_labels(circuit, gv).unwrap();
        let el: Vec<Label> = ev
            .iter()
            .enumerate()
            .map(|(i, &v)| secrets.evaluator_input_pair(circuit, i).select(v))
            .collect();
        evaluate(circuit, &garbled, &gl, &el).unwrap()
    }

    #[test]
    fn single_gates_all_inputs() {
        use crate::circuit::GateOp;
        for op in [GateOp::And, GateOp::Or, GateOp::Xor] {
            for a in [false, true] {
                for bv in [false, true] {
                    let mut b = CircuitBuilder::new();
                    let wa = b.garbler_input();
                    let wb = b.evaluator_input();
                    let out = match op {
                        GateOp::And => b.and(wa, wb),
                        GateOp::Or => b.or(wa, wb),
                        GateOp::Xor => b.xor(wa, wb),
                    };
                    b.outputs(&[out]);
                    let c = b.build();
                    let mut r = rng();
                    let got = run(&c, &[a], &[bv], &mut r);
                    assert_eq!(got, vec![op.eval(a, bv)], "{op:?} {a} {bv}");
                }
            }
        }
    }

    #[test]
    fn garbled_matches_plain_on_adder() {
        let mut b = CircuitBuilder::new();
        let x = b.garbler_inputs(6);
        let y = b.garbler_inputs(6);
        let s = b.add(&x, &y);
        b.outputs(&s);
        let consts = b.constant_wire_values();
        let c = b.build();
        let mut r = rng();
        for (xv, yv) in [(5u64, 9u64), (63, 63), (0, 0), (42, 21)] {
            let mut gv: Vec<bool> = (0..6).map(|i| (xv >> i) & 1 == 1).collect();
            gv.extend((0..6).map(|i| (yv >> i) & 1 == 1));
            gv.extend(consts.clone());
            let got = run(&c, &gv, &[], &mut r);
            assert_eq!(got, c.eval_plain(&gv, &[]));
            assert_eq!(bits_to_u128(&got), (xv + yv) as u128);
        }
    }

    #[test]
    fn labels_have_opposite_colors() {
        let mut r = rng();
        for _ in 0..50 {
            let p = WirePair::random(&mut r);
            assert_ne!(p.zero.color(), p.one.color());
        }
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut b = CircuitBuilder::new();
        let wa = b.garbler_input();
        let wb = b.evaluator_input();
        let o = b.and(wa, wb);
        b.outputs(&[o]);
        let c = b.build();
        let mut r = rng();
        let (garbled, secrets) = garble(&c, &mut r);
        assert!(secrets.garbler_input_labels(&c, &[]).is_err());
        assert!(evaluate(&c, &garbled, &[], &[]).is_err());
    }

    #[test]
    fn wire_size_accounting() {
        let mut b = CircuitBuilder::new();
        let wa = b.garbler_input();
        let wb = b.evaluator_input();
        let o1 = b.and(wa, wb);
        let o2 = b.xor(wa, wb);
        b.outputs(&[o1, o2]);
        let c = b.build();
        let mut r = rng();
        let (garbled, _) = garble(&c, &mut r);
        assert_eq!(garbled.wire_size(), 2 * 4 * LABEL_LEN + 1);
    }

    #[test]
    fn evaluator_learns_only_one_label() {
        // Sanity: the evaluated output labels differ per input but decode
        // consistently — i.e. evaluation does not depend on seeing both
        // labels of any wire.
        let mut b = CircuitBuilder::new();
        let wa = b.garbler_input();
        let wb = b.evaluator_input();
        let o = b.and(wa, wb);
        b.outputs(&[o]);
        let c = b.build();
        let mut r = rng();
        for ev in [false, true] {
            let got = run(&c, &[true], &[ev], &mut r);
            assert_eq!(got[0], ev);
        }
    }
}
