//! Property-based tests for `pps-bignum`: ring axioms against a `u128`
//! oracle, division reconstruction, modular-arithmetic laws, and codec
//! round trips over arbitrary-size operands.

use pps_bignum::{crt_combine, Montgomery, Uint};
use proptest::prelude::*;

/// Strategy: an arbitrary Uint of up to `max_limbs` limbs.
fn uint(max_limbs: usize) -> impl Strategy<Value = Uint> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(Uint::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // --- u128 oracle: every operation must agree with native arithmetic ---

    #[test]
    fn add_oracle(a in any::<u64>(), b in any::<u64>()) {
        let sum = &Uint::from_u64(a) + &Uint::from_u64(b);
        prop_assert_eq!(sum, Uint::from_u128(a as u128 + b as u128));
    }

    #[test]
    fn mul_oracle(a in any::<u64>(), b in any::<u64>()) {
        let prod = &Uint::from_u64(a) * &Uint::from_u64(b);
        prop_assert_eq!(prod, Uint::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn div_oracle(a in any::<u128>(), b in 1..=u128::MAX) {
        let (q, r) = Uint::from_u128(a).div_rem(&Uint::from_u128(b)).unwrap();
        prop_assert_eq!(q, Uint::from_u128(a / b));
        prop_assert_eq!(r, Uint::from_u128(a % b));
    }

    #[test]
    fn sub_oracle(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let diff = &Uint::from_u128(hi) - &Uint::from_u128(lo);
        prop_assert_eq!(diff, Uint::from_u128(hi - lo));
    }

    // --- ring axioms on large operands ---

    #[test]
    fn add_commutes(a in uint(12), b in uint(12)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in uint(8), b in uint(8), c in uint(8)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutes(a in uint(10), b in uint(10)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associates(a in uint(5), b in uint(5), c in uint(5)) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributivity(a in uint(6), b in uint(6), c in uint(6)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn add_identity(a in uint(12)) {
        prop_assert_eq!(&a + &Uint::zero(), a.clone());
        prop_assert_eq!(&a * &Uint::one(), a);
    }

    // --- division reconstruction on large operands ---

    #[test]
    fn div_rem_reconstructs(a in uint(16), b in uint(9)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    // --- shifts are multiplication/division by powers of two ---

    #[test]
    fn shl_is_mul_pow2(a in uint(6), k in 0usize..200) {
        prop_assert_eq!(a.shl(k), &a * &Uint::one().shl(k));
    }

    #[test]
    fn shl_shr_round_trip(a in uint(6), k in 0usize..200) {
        prop_assert_eq!(a.shl(k).shr(k), a);
    }

    // --- codecs round-trip ---

    #[test]
    fn bytes_round_trip(a in uint(10)) {
        prop_assert_eq!(Uint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn hex_round_trip(a in uint(10)) {
        prop_assert_eq!(Uint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_round_trip(a in uint(6)) {
        prop_assert_eq!(Uint::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    // --- gcd laws ---

    #[test]
    fn gcd_divides_both(a in uint(6), b in uint(6)) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.rem_of(&g).unwrap().is_zero());
            prop_assert!(b.rem_of(&g).unwrap().is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn gcd_lcm_product(a in 1u64.., b in 1u64..) {
        let (a, b) = (Uint::from_u64(a), Uint::from_u64(b));
        prop_assert_eq!(&a.gcd(&b) * &a.lcm(&b), &a * &b);
    }

    // --- modular arithmetic laws ---

    #[test]
    fn mod_add_matches_oracle(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        let got = Uint::from_u64(a).mod_add(&Uint::from_u64(b), &Uint::from_u64(m)).unwrap();
        prop_assert_eq!(got, Uint::from_u128((a as u128 + b as u128) % m as u128));
    }

    #[test]
    fn mod_sub_then_add_cancels(a in any::<u64>(), b in any::<u64>(), m in 2u64..) {
        let m = Uint::from_u64(m);
        let a = Uint::from_u64(a);
        let b = Uint::from_u64(b);
        let d = a.mod_sub(&b, &m).unwrap();
        prop_assert_eq!(d.mod_add(&b, &m).unwrap(), a.rem_of(&m).unwrap());
    }

    #[test]
    fn mod_pow_small_exponent_oracle(a in any::<u32>(), e in 0u32..12, m in 2u64..) {
        let m_big = Uint::from_u64(m);
        let got = Uint::from_u64(a as u64).mod_pow(&Uint::from_u64(e as u64), &m_big).unwrap();
        let mut expect = 1u128;
        for _ in 0..e {
            expect = expect * (a as u128 % m as u128) % m as u128;
        }
        prop_assert_eq!(got, Uint::from_u128(expect));
    }

    // --- Montgomery agrees with the generic path ---

    #[test]
    fn montgomery_pow_matches_generic(
        base in uint(5),
        exp in uint(2),
        m in uint(5),
    ) {
        prop_assume!(m.is_odd() && m.bit_len() >= 2);
        let ctx = Montgomery::new(m.clone()).unwrap();
        prop_assert_eq!(ctx.pow(&base, &exp).unwrap(), base.mod_pow(&exp, &m).unwrap());
    }

    #[test]
    fn montgomery_mul_matches_generic(a in uint(5), b in uint(5), m in uint(5)) {
        prop_assume!(m.is_odd() && m.bit_len() >= 2);
        let ctx = Montgomery::new(m.clone()).unwrap();
        let got = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        prop_assert_eq!(got, a.mod_mul(&b, &m).unwrap());
    }

    // --- inverse really inverts ---

    #[test]
    fn mod_inverse_multiplies_to_one(a in uint(4), m in uint(4)) {
        prop_assume!(m.bit_len() >= 2);
        if let Ok(inv) = a.mod_inverse(&m) {
            prop_assert_eq!(a.mod_mul(&inv, &m).unwrap(), Uint::one());
        } else {
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    // --- CRT reconstructs ---

    #[test]
    fn crt_reconstructs(x in any::<u64>(), p in 2u64..50_000, q in 2u64..50_000) {
        let (p, q) = (Uint::from_u64(p), Uint::from_u64(q));
        prop_assume!(p.gcd(&q).is_one());
        let x = Uint::from_u64(x).rem_of(&(&p * &q)).unwrap();
        let got = crt_combine(
            &[x.rem_of(&p).unwrap(), x.rem_of(&q).unwrap()],
            &[p, q],
        ).unwrap();
        prop_assert_eq!(got, x);
    }
}
