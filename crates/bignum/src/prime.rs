//! Primality testing (Miller–Rabin) and random prime generation.

use rand::RngCore;

use crate::error::BignumError;
use crate::montgomery::Montgomery;
use crate::uint::Uint;

/// Small primes used to pre-screen candidates before Miller–Rabin.
///
/// Trial division by these rejects ~88% of random odd composites at
/// negligible cost compared to a modular exponentiation.
const SMALL_PRIMES: &[u64] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349,
];

/// Deterministic Miller–Rabin witness set, sufficient for all `n < 2^64`
/// (Sinclair, 2011).
const DETERMINISTIC_BASES: &[u64] = &[2, 325, 9375, 28178, 450775, 9780504, 1795265022];

/// Number of random Miller–Rabin rounds for larger candidates; error
/// probability <= 4^-40.
const RANDOM_ROUNDS: usize = 40;

impl Uint {
    /// Probabilistic primality test.
    ///
    /// Deterministic for values below 2^64; otherwise small-prime trial
    /// division followed by 40 random-base Miller–Rabin rounds
    /// (error < 4⁻⁴⁰).
    pub fn is_prime(&self, rng: &mut dyn RngCore) -> bool {
        if self.bit_len() <= 1 {
            return false; // 0, 1
        }
        if let Some(v) = self.to_u64() {
            if v == 2 {
                return true;
            }
        }
        if self.is_even() {
            return false;
        }
        for &p in SMALL_PRIMES {
            let (_, r) = self.div_rem_u64(p).expect("p != 0");
            if r == 0 {
                return self.to_u64() == Some(p);
            }
        }
        let ctx = match Montgomery::new(self.clone()) {
            Ok(ctx) => ctx,
            Err(_) => return false,
        };
        let n_minus_1 = self - &Uint::one();
        let s = n_minus_1
            .trailing_zeros()
            .expect("n - 1 > 0 for odd n >= 3");
        let d = n_minus_1.shr(s);

        let passes = |base: &Uint| -> bool { miller_rabin_round(&ctx, base, &d, s, &n_minus_1) };

        if self.bit_len() <= 64 {
            DETERMINISTIC_BASES
                .iter()
                .all(|&b| passes(&Uint::from_u64(b)))
        } else {
            (0..RANDOM_ROUNDS).all(|_| {
                let base = Uint::random_range(rng, &Uint::from_u64(2), &n_minus_1)
                    .expect("n - 1 > 2 here");
                passes(&base)
            })
        }
    }

    /// Generates a random prime with exactly `bits` significant bits.
    ///
    /// # Errors
    /// Returns [`BignumError::PrimeGenerationFailed`] if no prime is found
    /// within a generous iteration budget (~40·bits candidates, far above
    /// the prime-number-theorem expectation of ~0.7·bits), and
    /// [`BignumError::EmptyRange`] for `bits < 2`.
    pub fn generate_prime(rng: &mut dyn RngCore, bits: usize) -> Result<Uint, BignumError> {
        if bits < 2 {
            return Err(BignumError::EmptyRange);
        }
        if bits == 2 {
            // Candidates are only 2 and 3; sample directly.
            return Ok(Uint::from_u64(if rng.next_u32() & 1 == 0 { 2 } else { 3 }));
        }
        let budget = 40 * bits.max(8);
        for _ in 0..budget {
            let mut candidate = Uint::random_bits_exact(rng, bits);
            candidate.set_bit(0, true); // force odd
            if candidate.is_prime(rng) {
                return Ok(candidate);
            }
        }
        Err(BignumError::PrimeGenerationFailed { bits })
    }

    /// Generates a prime `p` with exactly `bits` bits such that
    /// `gcd(p - 1, co) == 1` — used by Paillier key generation to keep
    /// `N` coprime with `λ`.
    ///
    /// # Errors
    /// As [`Uint::generate_prime`].
    pub fn generate_prime_coprime(
        rng: &mut dyn RngCore,
        bits: usize,
        co: &Uint,
    ) -> Result<Uint, BignumError> {
        let budget = 200;
        for _ in 0..budget {
            let p = Self::generate_prime(rng, bits)?;
            if (&p - &Uint::one()).gcd(co).is_one() {
                return Ok(p);
            }
        }
        Err(BignumError::PrimeGenerationFailed { bits })
    }
}

/// One Miller–Rabin round: returns `true` when `base` is *not* a witness
/// of compositeness.
fn miller_rabin_round(ctx: &Montgomery, base: &Uint, d: &Uint, s: usize, n_minus_1: &Uint) -> bool {
    let n = ctx.modulus();
    let base = base.rem_of(n).expect("modulus valid");
    if base.is_zero() || base.is_one() || &base == n_minus_1 {
        return true;
    }
    let mut x = ctx.pow(&base, d).expect("valid context");
    if x.is_one() || &x == n_minus_1 {
        return true;
    }
    for _ in 1..s {
        x = x.mod_mul(&x, n).expect("modulus != 0");
        if &x == n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false; // nontrivial sqrt of 1
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn small_values() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 257, 65_537];
        let composites = [0u64, 1, 4, 6, 9, 15, 91, 341, 561, 65_535];
        for p in primes {
            assert!(Uint::from_u64(p).is_prime(&mut r), "{p} is prime");
        }
        for c in composites {
            assert!(!Uint::from_u64(c).is_prime(&mut r), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat pseudoprimes to many bases; Miller–Rabin must catch them.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!Uint::from_u64(c).is_prime(&mut r), "{c} is Carmichael");
        }
    }

    #[test]
    fn strong_pseudoprimes_base_2_rejected() {
        let mut r = rng();
        // Strong pseudoprimes to base 2; deterministic base set must catch.
        for c in [2047u64, 3277, 4033, 4681, 8321, 15841, 29341] {
            assert!(!Uint::from_u64(c).is_prime(&mut r), "{c}");
        }
    }

    #[test]
    fn known_large_primes() {
        let mut r = rng();
        // 2^89 - 1 and 2^107 - 1 are Mersenne primes.
        for e in [89usize, 107] {
            let p = &Uint::one().shl(e) - &Uint::one();
            assert!(p.is_prime(&mut r), "2^{e} - 1");
        }
        // 2^101 - 1 is composite.
        let c = &Uint::one().shl(101) - &Uint::one();
        assert!(!c.is_prime(&mut r));
    }

    #[test]
    fn product_of_large_primes_is_composite() {
        let mut r = rng();
        let p = Uint::generate_prime(&mut r, 64).unwrap();
        let q = Uint::generate_prime(&mut r, 64).unwrap();
        assert!(!(&p * &q).is_prime(&mut r));
    }

    #[test]
    fn generate_prime_sizes() {
        let mut r = rng();
        for bits in [2usize, 3, 8, 16, 32, 64, 128, 256] {
            let p = Uint::generate_prime(&mut r, bits).unwrap();
            assert_eq!(p.bit_len(), bits, "bits={bits}");
            assert!(p.is_prime(&mut r));
        }
        assert!(Uint::generate_prime(&mut r, 1).is_err());
    }

    #[test]
    fn generate_prime_coprime() {
        let mut r = rng();
        let co = Uint::from_u64(3 * 5 * 7);
        let p = Uint::generate_prime_coprime(&mut r, 32, &co).unwrap();
        assert!((&p - &Uint::one()).gcd(&co).is_one());
    }

    #[test]
    fn paillier_scale_prime() {
        // The paper uses 512-bit keys => two 256-bit primes.
        let mut r = rng();
        let p = Uint::generate_prime(&mut r, 256).unwrap();
        assert_eq!(p.bit_len(), 256);
        assert!(p.is_odd());
    }
}
