//! Bitwise operations on [`Uint`].

use std::ops::{BitAnd, BitOr, BitXor};

use crate::uint::Uint;

impl BitAnd<&Uint> for &Uint {
    type Output = Uint;

    fn bitand(self, rhs: &Uint) -> Uint {
        let limbs = self
            .limbs()
            .iter()
            .zip(rhs.limbs())
            .map(|(a, b)| a & b)
            .collect();
        Uint::from_limbs(limbs)
    }
}

impl BitOr<&Uint> for &Uint {
    type Output = Uint;

    fn bitor(self, rhs: &Uint) -> Uint {
        let (long, short) = if self.limbs().len() >= rhs.limbs().len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = long.limbs().to_vec();
        for (i, b) in short.limbs().iter().enumerate() {
            limbs[i] |= b;
        }
        Uint::from_limbs(limbs)
    }
}

impl BitXor<&Uint> for &Uint {
    type Output = Uint;

    fn bitxor(self, rhs: &Uint) -> Uint {
        let (long, short) = if self.limbs().len() >= rhs.limbs().len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = long.limbs().to_vec();
        for (i, b) in short.limbs().iter().enumerate() {
            limbs[i] ^= b;
        }
        Uint::from_limbs(limbs)
    }
}

impl Uint {
    /// Number of set bits (population count).
    pub fn count_ones(&self) -> usize {
        self.limbs().iter().map(|l| l.count_ones() as usize).sum()
    }

    /// The low `bits` bits of the value (`self mod 2^bits`).
    pub fn low_bits(&self, bits: usize) -> Uint {
        let full = bits / 64;
        let partial = bits % 64;
        let mut limbs: Vec<u64> = self.limbs().iter().take(full + 1).copied().collect();
        if limbs.len() > full {
            limbs.truncate(full + 1);
            if partial == 0 {
                limbs.truncate(full);
            } else if limbs.len() == full + 1 {
                limbs[full] &= (1u64 << partial) - 1;
            }
        }
        Uint::from_limbs(limbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u128) -> Uint {
        Uint::from_u128(v)
    }

    #[test]
    fn and_or_xor_match_u128() {
        let pairs = [
            (0u128, 0u128),
            (0xff00, 0x0ff0),
            (u128::MAX, 0x1234_5678_9abc_def0),
            (u128::MAX, u128::MAX),
        ];
        for (a, b) in pairs {
            assert_eq!(&u(a) & &u(b), u(a & b), "and {a:x} {b:x}");
            assert_eq!(&u(a) | &u(b), u(a | b), "or {a:x} {b:x}");
            assert_eq!(&u(a) ^ &u(b), u(a ^ b), "xor {a:x} {b:x}");
        }
    }

    #[test]
    fn mixed_lengths() {
        let big = Uint::one().shl(200);
        let small = u(0xff);
        assert_eq!(&big & &small, Uint::zero());
        assert_eq!(&big | &small, &big + &small);
        assert_eq!(&big ^ &small, &big + &small);
        assert_eq!(&small | &big, &big + &small, "commutes");
    }

    #[test]
    fn xor_self_is_zero() {
        let v = Uint::from_hex("deadbeefcafebabe1234567890").unwrap();
        assert_eq!(&v ^ &v, Uint::zero());
        assert_eq!(&v & &v, v);
        assert_eq!(&v | &v, v);
    }

    #[test]
    fn count_ones() {
        assert_eq!(Uint::zero().count_ones(), 0);
        assert_eq!(u(0xff).count_ones(), 8);
        assert_eq!(Uint::one().shl(500).count_ones(), 1);
    }

    #[test]
    fn low_bits() {
        let v = Uint::from_hex("ffffffffffffffffffffffffffffffff").unwrap(); // 128 ones
        assert_eq!(v.low_bits(8), u(0xff));
        assert_eq!(v.low_bits(64), u(u64::MAX as u128));
        assert_eq!(v.low_bits(65), u((u64::MAX as u128) | 1 << 64));
        assert_eq!(v.low_bits(128), v);
        assert_eq!(v.low_bits(200), v, "wider than the value is identity");
        assert_eq!(v.low_bits(0), Uint::zero());
        // Equivalent to mod 2^k.
        assert_eq!(v.low_bits(77), v.rem_of(&Uint::one().shl(77)).unwrap());
    }
}
