//! Greatest common divisor, extended Euclid, modular inverse, and lcm.

use crate::error::BignumError;
use crate::uint::Uint;

/// A signed big integer, private to this module, used only to carry the
/// Bézout coefficients through the extended Euclidean algorithm.
#[derive(Clone, Debug)]
struct Int {
    negative: bool,
    mag: Uint,
}

impl Int {
    fn zero() -> Self {
        Int {
            negative: false,
            mag: Uint::zero(),
        }
    }

    fn one() -> Self {
        Int {
            negative: false,
            mag: Uint::one(),
        }
    }

    /// `self - q * other`, the update step of extended Euclid.
    fn sub_mul(&self, q: &Uint, other: &Int) -> Int {
        let prod = &other.mag * q;
        if prod.is_zero() {
            return self.clone();
        }
        // Sign of the term being added, i.e. of -(q * other).
        let term_negative = !other.negative;
        if self.negative == term_negative || self.mag.is_zero() {
            // Same sign (or self is zero): magnitudes add.
            Int {
                negative: term_negative,
                mag: &self.mag + &prod,
            }
        } else {
            // Opposite signs: subtract the smaller magnitude.
            let (mag, self_smaller) = self.mag.abs_diff(&prod);
            let negative = if self_smaller {
                term_negative
            } else {
                self.negative
            };
            Int {
                negative: negative && !mag.is_zero(),
                mag,
            }
        }
    }

    /// Canonical representative modulo `m` in `[0, m)`.
    fn rem_euclid(&self, m: &Uint) -> Result<Uint, BignumError> {
        let r = self.mag.rem_of(m)?;
        if self.negative && !r.is_zero() {
            Ok(m - &r)
        } else {
            Ok(r)
        }
    }
}

impl Uint {
    /// Greatest common divisor by the binary (Stein) algorithm.
    ///
    /// `gcd(0, b) = b` and `gcd(a, 0) = a`.
    pub fn gcd(&self, rhs: &Uint) -> Uint {
        let mut a = self.clone();
        let mut b = rhs.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros().expect("a != 0");
        let bz = b.trailing_zeros().expect("b != 0");
        let common = az.min(bz);
        a = a.shr(az);
        b = b.shr(bz);
        // Both odd from here on.
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                return a.shl(common);
            }
            b = b.shr(b.trailing_zeros().expect("b != 0"));
        }
    }

    /// Least common multiple. `lcm(0, x) = 0`.
    pub fn lcm(&self, rhs: &Uint) -> Uint {
        if self.is_zero() || rhs.is_zero() {
            return Uint::zero();
        }
        let g = self.gcd(rhs);
        &(self / &g) * rhs
    }

    /// Extended Euclid: returns `(g, x mod m)` such that
    /// `g = gcd(self, m)` and `self·x ≡ g (mod m)`.
    ///
    /// # Errors
    /// Returns [`BignumError::InvalidModulus`] when `m < 2`.
    pub fn extended_gcd_mod(&self, m: &Uint) -> Result<(Uint, Uint), BignumError> {
        if m.is_zero() || m.is_one() {
            return Err(BignumError::InvalidModulus("modulus must be >= 2"));
        }
        let mut r0 = self.rem_of(m)?;
        let mut r1 = m.clone();
        let mut s0 = Int::one();
        let mut s1 = Int::zero();
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1)?;
            let s = s0.sub_mul(&q, &s1);
            r0 = std::mem::replace(&mut r1, r);
            s0 = std::mem::replace(&mut s1, s);
        }
        Ok((r0, s0.rem_euclid(m)?))
    }

    /// Modular inverse: the unique `x` in `[1, m)` with
    /// `self·x ≡ 1 (mod m)`.
    ///
    /// # Errors
    /// Returns [`BignumError::NoInverse`] when `gcd(self, m) != 1`, and
    /// [`BignumError::InvalidModulus`] when `m < 2`.
    pub fn mod_inverse(&self, m: &Uint) -> Result<Uint, BignumError> {
        let (g, x) = self.extended_gcd_mod(m)?;
        if g.is_one() {
            Ok(x)
        } else {
            Err(BignumError::NoInverse)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Uint {
        Uint::from_u64(v)
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(u(12).gcd(&u(18)), u(6));
        assert_eq!(u(17).gcd(&u(5)), u(1));
        assert_eq!(u(0).gcd(&u(5)), u(5));
        assert_eq!(u(5).gcd(&u(0)), u(5));
        assert_eq!(u(0).gcd(&u(0)), u(0));
        assert_eq!(u(48).gcd(&u(48)), u(48));
    }

    #[test]
    fn gcd_powers_of_two() {
        assert_eq!(u(1024).gcd(&u(640)), u(128));
        let a = Uint::one().shl(200);
        let b = Uint::one().shl(123);
        assert_eq!(a.gcd(&b), b);
    }

    #[test]
    fn gcd_large_known() {
        // gcd(fib(90), fib(87)) = fib(gcd(90,87)) = fib(3) = 2.
        let f90 = Uint::from_decimal("2880067194370816120").unwrap();
        let f87 = Uint::from_decimal("679891637638612258").unwrap();
        assert_eq!(f90.gcd(&f87), u(2));
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(u(4).lcm(&u(6)), u(12));
        assert_eq!(u(0).lcm(&u(6)), u(0));
        assert_eq!(u(7).lcm(&u(13)), u(91));
    }

    #[test]
    fn mod_inverse_small() {
        let m = u(97);
        for a in 1u64..97 {
            let inv = u(a).mod_inverse(&m).unwrap();
            assert_eq!(u(a).mod_mul(&inv, &m).unwrap(), u(1), "a={a}");
            assert!(inv < m && !inv.is_zero());
        }
    }

    #[test]
    fn mod_inverse_nonexistent() {
        assert_eq!(u(6).mod_inverse(&u(9)), Err(BignumError::NoInverse));
        assert_eq!(u(0).mod_inverse(&u(9)), Err(BignumError::NoInverse));
    }

    #[test]
    fn mod_inverse_invalid_modulus() {
        assert!(matches!(
            u(3).mod_inverse(&u(0)),
            Err(BignumError::InvalidModulus(_))
        ));
        assert!(matches!(
            u(3).mod_inverse(&u(1)),
            Err(BignumError::InvalidModulus(_))
        ));
    }

    #[test]
    fn mod_inverse_large() {
        // Inverse modulo a 128-bit prime, checked by multiplication.
        let p = Uint::from_decimal("340282366920938463463374607431768211297").unwrap();
        let a = Uint::from_decimal("123456789012345678901234567890").unwrap();
        let inv = a.mod_inverse(&p).unwrap();
        assert_eq!(a.mod_mul(&inv, &p).unwrap(), Uint::one());
    }

    #[test]
    fn extended_gcd_bezout() {
        // g = a*x mod m must hold for the returned coefficient.
        let a = u(240);
        let m = u(46 * 3 + 1); // 139, prime
        let (g, x) = a.extended_gcd_mod(&m).unwrap();
        assert_eq!(g, u(1));
        assert_eq!(a.mod_mul(&x, &m).unwrap(), g);
        // Non-coprime case still returns the gcd.
        let (g2, x2) = u(24).extended_gcd_mod(&u(36)).unwrap();
        assert_eq!(g2, u(12));
        assert_eq!(u(24).mod_mul(&x2, &u(36)).unwrap(), u(12));
    }
}
