//! Chinese Remainder Theorem recombination.
//!
//! Paillier decryption is ~4× faster when performed modulo `p²` and `q²`
//! separately and recombined; this module provides the recombination.

use crate::error::BignumError;
use crate::uint::Uint;

/// Precomputed context for CRT recombination over two coprime moduli.
#[derive(Clone, Debug)]
pub struct Crt2 {
    m1: Uint,
    m2: Uint,
    /// `m1⁻¹ mod m2`.
    m1_inv_m2: Uint,
    /// `m1 * m2`.
    product: Uint,
}

impl Crt2 {
    /// Builds a context for coprime moduli `m1`, `m2` (both >= 2).
    ///
    /// # Errors
    /// Returns [`BignumError::NoInverse`] when the moduli share a factor
    /// and [`BignumError::InvalidModulus`] when either is < 2.
    pub fn new(m1: Uint, m2: Uint) -> Result<Self, BignumError> {
        if m1.bit_len() < 2 || m2.bit_len() < 2 {
            return Err(BignumError::InvalidModulus("CRT moduli must be >= 2"));
        }
        let m1_inv_m2 = m1.mod_inverse(&m2)?;
        let product = &m1 * &m2;
        Ok(Crt2 {
            m1,
            m2,
            m1_inv_m2,
            product,
        })
    }

    /// The combined modulus `m1 * m2`.
    pub fn modulus(&self) -> &Uint {
        &self.product
    }

    /// Finds the unique `x` in `[0, m1·m2)` with `x ≡ r1 (mod m1)` and
    /// `x ≡ r2 (mod m2)` (Garner's formula).
    ///
    /// # Errors
    /// Propagates reduction errors (never for a valid context).
    pub fn combine(&self, r1: &Uint, r2: &Uint) -> Result<Uint, BignumError> {
        let r1 = r1.rem_of(&self.m1)?;
        let r2 = r2.rem_of(&self.m2)?;
        // x = r1 + m1 * ((r2 - r1) * m1^-1 mod m2)
        let diff = r2.mod_sub(&r1, &self.m2)?;
        let h = diff.mod_mul(&self.m1_inv_m2, &self.m2)?;
        Ok(&r1 + &(&self.m1 * &h))
    }
}

/// One-shot CRT over an arbitrary list of pairwise-coprime moduli.
///
/// `residues[i]` is the target residue modulo `moduli[i]`. Returns the
/// unique solution modulo the product.
///
/// # Errors
/// Returns [`BignumError::NoInverse`] for non-coprime moduli,
/// [`BignumError::InvalidModulus`] for moduli < 2 or an empty/mismatched
/// input.
pub fn crt_combine(residues: &[Uint], moduli: &[Uint]) -> Result<Uint, BignumError> {
    if residues.len() != moduli.len() || moduli.is_empty() {
        return Err(BignumError::InvalidModulus(
            "residue/modulus count mismatch",
        ));
    }
    let mut x = residues[0].rem_of(&moduli[0])?;
    let mut m = moduli[0].clone();
    for (r, mi) in residues.iter().zip(moduli.iter()).skip(1) {
        let ctx = Crt2::new(m.clone(), mi.clone())?;
        x = ctx.combine(&x, r)?;
        m = ctx.product;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Uint {
        Uint::from_u64(v)
    }

    #[test]
    fn two_moduli() {
        let ctx = Crt2::new(u(5), u(7)).unwrap();
        // x ≡ 2 (mod 5), x ≡ 3 (mod 7) → x = 17.
        assert_eq!(ctx.combine(&u(2), &u(3)).unwrap(), u(17));
        assert_eq!(ctx.modulus(), &u(35));
    }

    #[test]
    fn unreduced_residues_accepted() {
        let ctx = Crt2::new(u(5), u(7)).unwrap();
        assert_eq!(ctx.combine(&u(2 + 50), &u(3 + 70)).unwrap(), u(17));
    }

    #[test]
    fn rejects_shared_factor() {
        assert!(Crt2::new(u(6), u(9)).is_err());
        assert!(Crt2::new(u(1), u(9)).is_err());
    }

    #[test]
    fn exhaustive_small() {
        let ctx = Crt2::new(u(11), u(13)).unwrap();
        for x in 0u64..143 {
            let got = ctx.combine(&u(x % 11), &u(x % 13)).unwrap();
            assert_eq!(got, u(x), "x={x}");
        }
    }

    #[test]
    fn multi_moduli() {
        // Sun Tzu's classic: x ≡ 2 (3), 3 (5), 2 (7) → 23.
        let x = crt_combine(&[u(2), u(3), u(2)], &[u(3), u(5), u(7)]).unwrap();
        assert_eq!(x, u(23));
    }

    #[test]
    fn multi_moduli_errors() {
        assert!(crt_combine(&[u(1)], &[u(3), u(5)]).is_err());
        assert!(crt_combine(&[], &[]).is_err());
        assert!(crt_combine(&[u(1), u(2)], &[u(4), u(6)]).is_err());
    }

    #[test]
    fn large_moduli_round_trip() {
        let p = Uint::from_decimal(
            "115792089237316195423570985008687907853269984665640564039457584007913129639747",
        )
        .unwrap();
        let q = Uint::from_decimal("100000000000000000000000000000000000133").unwrap();
        let ctx = Crt2::new(p.clone(), q.clone()).unwrap();
        let x = Uint::from_decimal("98765432109876543210987654321098765432109876543210").unwrap();
        let got = ctx
            .combine(&x.rem_of(&p).unwrap(), &x.rem_of(&q).unwrap())
            .unwrap();
        assert_eq!(got, x);
    }
}
