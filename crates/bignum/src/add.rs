//! Addition and subtraction for [`Uint`].

use std::ops::{Add, AddAssign, Sub, SubAssign};

use crate::error::BignumError;
use crate::uint::Uint;

/// Adds `b` into `a` in place (limb vectors, carry-propagating).
fn add_in_place(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    let mut carry = 0u64;
    for (i, &bl) in b.iter().enumerate() {
        let (s1, c1) = a[i].overflowing_add(bl);
        let (s2, c2) = s1.overflowing_add(carry);
        a[i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut i = b.len();
    while carry != 0 && i < a.len() {
        let (s, c) = a[i].overflowing_add(carry);
        a[i] = s;
        carry = c as u64;
        i += 1;
    }
    if carry != 0 {
        a.push(carry);
    }
}

/// Subtracts `b` from `a` in place; returns `true` if a borrow escaped
/// (i.e. `b > a`), in which case the contents of `a` are meaningless.
fn sub_in_place(a: &mut [u64], b: &[u64]) -> bool {
    debug_assert!(a.len() >= b.len());
    let mut borrow = 0u64;
    for (i, al) in a.iter_mut().enumerate() {
        let bl = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = al.overflowing_sub(bl);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *al = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    borrow != 0
}

impl Uint {
    /// Checked subtraction: `self - rhs`.
    ///
    /// # Errors
    /// Returns [`BignumError::Underflow`] when `rhs > self` (the result
    /// would be negative, which `Uint` cannot represent).
    pub fn checked_sub(&self, rhs: &Uint) -> Result<Uint, BignumError> {
        if rhs > self {
            return Err(BignumError::Underflow);
        }
        let mut limbs = self.limbs.clone();
        let borrowed = sub_in_place(&mut limbs, &rhs.limbs);
        debug_assert!(!borrowed);
        Ok(Uint::from_limbs(limbs))
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    pub fn saturating_sub(&self, rhs: &Uint) -> Uint {
        self.checked_sub(rhs).unwrap_or_else(|_| Uint::zero())
    }

    /// `|self - rhs|`, together with whether the true difference was
    /// negative. Useful for Karatsuba's middle term.
    pub(crate) fn abs_diff(&self, rhs: &Uint) -> (Uint, bool) {
        if self >= rhs {
            (self.checked_sub(rhs).expect("self >= rhs"), false)
        } else {
            (rhs.checked_sub(self).expect("rhs > self"), true)
        }
    }
}

impl Add<&Uint> for &Uint {
    type Output = Uint;

    fn add(self, rhs: &Uint) -> Uint {
        let mut limbs = self.limbs.clone();
        add_in_place(&mut limbs, &rhs.limbs);
        Uint::from_limbs(limbs)
    }
}

impl Add<Uint> for Uint {
    type Output = Uint;

    fn add(self, rhs: Uint) -> Uint {
        &self + &rhs
    }
}

impl AddAssign<&Uint> for Uint {
    fn add_assign(&mut self, rhs: &Uint) {
        add_in_place(&mut self.limbs, &rhs.limbs);
        self.normalize();
    }
}

impl Sub<&Uint> for &Uint {
    type Output = Uint;

    /// Panics on underflow; use [`Uint::checked_sub`] to handle it.
    fn sub(self, rhs: &Uint) -> Uint {
        self.checked_sub(rhs)
            .expect("Uint subtraction underflow; use checked_sub")
    }
}

impl Sub<Uint> for Uint {
    type Output = Uint;

    fn sub(self, rhs: Uint) -> Uint {
        &self - &rhs
    }
}

impl SubAssign<&Uint> for Uint {
    fn sub_assign(&mut self, rhs: &Uint) {
        *self = &*self - rhs;
    }
}

#[cfg(test)]
mod tests {
    use crate::uint::Uint;

    #[test]
    fn add_basic() {
        let a = Uint::from_u64(u64::MAX);
        let b = Uint::from_u64(1);
        assert_eq!(&a + &b, Uint::from_u128(1u128 << 64));
        assert_eq!(&a + &Uint::zero(), a);
        assert_eq!(&Uint::zero() + &Uint::zero(), Uint::zero());
    }

    #[test]
    fn add_carry_chain() {
        // All-ones across several limbs: adding 1 must ripple to a new limb.
        let a = Uint::from_limbs(vec![u64::MAX; 4]);
        let s = &a + &Uint::one();
        assert_eq!(s.limbs(), &[0, 0, 0, 0, 1]);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Uint::from_u128(u128::MAX);
        let b = Uint::from_u128(u128::MAX - 7);
        let expect = &a + &b;
        a += &b;
        assert_eq!(a, expect);
    }

    #[test]
    fn sub_basic() {
        let a = Uint::from_u128(1u128 << 64);
        let b = Uint::from_u64(1);
        assert_eq!(&a - &b, Uint::from_u64(u64::MAX));
        assert_eq!(&a - &a, Uint::zero());
    }

    #[test]
    fn sub_underflow_is_error() {
        assert!(Uint::zero().checked_sub(&Uint::one()).is_err());
        assert_eq!(Uint::zero().saturating_sub(&Uint::one()), Uint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_operator_panics_on_underflow() {
        let _ = &Uint::one() - &Uint::from_u64(2);
    }

    #[test]
    fn abs_diff() {
        let a = Uint::from_u64(10);
        let b = Uint::from_u64(25);
        assert_eq!(a.abs_diff(&b), (Uint::from_u64(15), true));
        assert_eq!(b.abs_diff(&a), (Uint::from_u64(15), false));
        assert_eq!(a.abs_diff(&a), (Uint::zero(), false));
    }

    #[test]
    fn add_sub_round_trip_large() {
        let a = Uint::from_hex("ffffffffffffffffffffffffffffffffffffffff").unwrap();
        let b = Uint::from_hex("123456789abcdef0123456789abcdef012345678").unwrap();
        assert_eq!(&(&a + &b) - &b, a);
    }
}
