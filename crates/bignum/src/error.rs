//! Error type for bignum operations.

use std::fmt;

/// Errors surfaced by [`crate::Uint`] arithmetic and codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BignumError {
    /// Division or reduction by zero.
    DivisionByZero,
    /// Subtraction result would be negative.
    Underflow,
    /// A modular inverse does not exist (operand and modulus share a
    /// factor).
    NoInverse,
    /// The modulus was invalid for the requested operation (e.g. an even
    /// modulus passed to a Montgomery context, or modulus < 2).
    InvalidModulus(&'static str),
    /// A value did not fit the requested fixed-width encoding.
    ValueTooLarge {
        /// Bits required by the value.
        bits: usize,
        /// Bits available in the target encoding.
        capacity_bits: usize,
    },
    /// A non-digit character was encountered while parsing.
    InvalidDigit(char),
    /// An empty string was passed to a parser.
    Empty,
    /// Requested a random value from an empty range (`low >= high`).
    EmptyRange,
    /// Prime generation exhausted its iteration budget.
    PrimeGenerationFailed {
        /// Requested prime size.
        bits: usize,
    },
}

impl fmt::Display for BignumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DivisionByZero => write!(f, "division by zero"),
            Self::Underflow => write!(f, "unsigned subtraction underflow"),
            Self::NoInverse => write!(f, "modular inverse does not exist"),
            Self::InvalidModulus(why) => write!(f, "invalid modulus: {why}"),
            Self::ValueTooLarge {
                bits,
                capacity_bits,
            } => {
                write!(
                    f,
                    "value needs {bits} bits but encoding holds {capacity_bits}"
                )
            }
            Self::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
            Self::Empty => write!(f, "empty numeric string"),
            Self::EmptyRange => write!(f, "empty sampling range"),
            Self::PrimeGenerationFailed { bits } => {
                write!(f, "failed to generate a {bits}-bit prime within budget")
            }
        }
    }
}

impl std::error::Error for BignumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(BignumError::DivisionByZero.to_string(), "division by zero");
        assert!(BignumError::ValueTooLarge {
            bits: 72,
            capacity_bits: 64
        }
        .to_string()
        .contains("72"));
        assert!(BignumError::InvalidModulus("even")
            .to_string()
            .contains("even"));
    }
}
