//! Precomputed fixed-exponent plans for the two hot exponentiation paths.
//!
//! The selected-sum server evaluates `Π bᵢ^{xᵢ} mod N²` where the
//! database exponents `xᵢ` are **fixed across every query** while the
//! bases (ciphertexts) change per query; the client evaluates `r^N mod
//! N²` where the exponent `N` is fixed per key while the base `r` is
//! fresh per randomizer. Both paths today re-derive their exponent
//! recoding (window digits) on every call. This module pays that
//! recoding **once**:
//!
//! * [`MultiExpPlan`] — a per-database table of 4-bit window digits for
//!   every `xᵢ`, stored column-major so a streaming fold over a row
//!   range touches contiguous memory. Evaluation is Pippenger-style
//!   bucketization: per window, each base costs **one** Montgomery
//!   multiplication into its digit's bucket, and a single shared
//!   suffix-product chain (≈ `2·2^w` muls) reduces the buckets — versus
//!   the interleaved Straus fold's one multiplication per *set bit*
//!   (≈ 16 per base for 32-bit exponents). Because the server folds in
//!   batches, the effective window width (4, 8 or 12 bits, merged from
//!   the stored 4-bit digits at ~zero cost) is chosen per batch by a
//!   cost model: small batches can't amortize large bucket sets.
//! * [`FixedExponentPlan`] — the window digits of one fixed exponent,
//!   recoded once, so each `r^N` pays only the per-base table build and
//!   the multiply/square chain, not the exponent bit-scan.
//!
//! Both plans are immutable after construction and `Send + Sync`, so one
//! `Arc`-shared instance serves every concurrent session, shard worker,
//! and resumed checkpoint.

use crate::error::BignumError;
use crate::montgomery::{MontElem, Montgomery};
use crate::uint::Uint;

/// Granularity of the stored digit decomposition. Evaluation merges
/// 1–3 adjacent stored digits into an effective window of 4, 8 or 12
/// bits, so one table serves every batch size.
const BASE_WINDOW_BITS: usize = 4;

/// Effective window widths the evaluation cost model chooses between.
const EFFECTIVE_WINDOWS: [usize; 3] = [4, 8, 12];

/// Largest effective window accepted by the forced-width entry point
/// (buckets are `2^w`; beyond 16 bits the bucket set dwarfs any batch).
const MAX_WINDOW_BITS: usize = 16;

/// A per-database multi-exponentiation plan: the windowed digit
/// decomposition and bucket assignment of every fixed exponent `xᵢ`,
/// computed once and reused by every fold over that database.
///
/// Build with [`MultiExpPlan::build`]; evaluate a batch with
/// [`MultiExpPlan::fold_range`] / [`MultiExpPlan::fold_range_mont`].
///
/// # Examples
///
/// ```
/// use pps_bignum::{Montgomery, MultiExpPlan, Uint};
///
/// let ctx = Montgomery::new(Uint::from_u64(101 * 103)).unwrap();
/// let exps = [3u64, 0, 7];
/// let plan = MultiExpPlan::build(&exps);
/// let bases = [Uint::from_u64(2), Uint::from_u64(5), Uint::from_u64(9)];
/// let got = plan.fold_range(&ctx, &bases, 0).unwrap();
/// let want = ctx.multi_pow(&bases, &[Uint::from_u64(3), Uint::zero(), Uint::from_u64(7)]);
/// assert_eq!(got, want);
/// ```
#[derive(Clone, Debug)]
pub struct MultiExpPlan {
    /// Number of exponents (database rows) covered by the plan.
    rows: usize,
    /// Stored 4-bit windows per exponent: `ceil(max_bit_len / 4)`.
    windows: usize,
    /// Column-major digit table: `digits[w * rows + row]` is window `w`
    /// (least-significant first) of exponent `row`.
    digits: Vec<u8>,
}

// Compile-time audit: plans are built once and shared read-only behind
// an `Arc` across every session thread, shard worker, and resumed
// checkpoint. Interior mutability added here would silently serialize
// or break that sharing; make it a build failure instead.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MultiExpPlan>();
    assert_send_sync::<FixedExponentPlan>();
};

impl MultiExpPlan {
    /// Recodes every exponent into 4-bit window digits, column-major.
    ///
    /// This is the once-per-database cost the plan amortizes: `O(rows)`
    /// integer work, no modular arithmetic. All-zero exponent sets
    /// produce an empty table whose folds return 1.
    pub fn build(exps: &[u64]) -> Self {
        let max_bits = exps
            .iter()
            .map(|&x| 64 - x.leading_zeros() as usize)
            .max()
            .unwrap_or(0);
        let windows = max_bits.div_ceil(BASE_WINDOW_BITS);
        let rows = exps.len();
        let mut digits = vec![0u8; windows * rows];
        for (row, &x) in exps.iter().enumerate() {
            for w in 0..windows {
                digits[w * rows + row] = ((x >> (w * BASE_WINDOW_BITS)) & 0xf) as u8;
            }
        }
        MultiExpPlan {
            rows,
            windows,
            digits,
        }
    }

    /// Number of exponents (database rows) this plan covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Heap bytes held by the digit table — the memory cost of caching
    /// the plan (`rows × ceil(max_exponent_bits / 4)` bytes).
    pub fn table_bytes(&self) -> usize {
        self.digits.len()
    }

    /// The effective window width (bits) the cost model picks for a
    /// fold over `len` bases: minimizes `len·windows(w) + windows(w)·2^(w+1)`
    /// — bucket-accumulation muls plus the shared bucket-reduction
    /// chain. Small batches get 4-bit windows (small bucket sets),
    /// large folds get 8 or 12 bits.
    pub fn window_bits_for(&self, len: usize) -> usize {
        let max_bits = self.windows * BASE_WINDOW_BITS;
        EFFECTIVE_WINDOWS
            .iter()
            .copied()
            .min_by_key(|&w| {
                let nwin = max_bits.div_ceil(w).max(1);
                nwin * len + nwin * (1usize << (w + 1))
            })
            .unwrap_or(BASE_WINDOW_BITS)
    }

    /// Folds `Π basesᵢ^{x_{start+i}} mod n` for ordinary bases, using
    /// the cost-model window width. The result is an ordinary value.
    ///
    /// # Errors
    /// [`BignumError::ValueTooLarge`] when `start + bases.len()`
    /// exceeds the plan's row count.
    pub fn fold_range(
        &self,
        ctx: &Montgomery,
        bases: &[Uint],
        start: usize,
    ) -> Result<Uint, BignumError> {
        let mont: Vec<MontElem> = bases.iter().map(|b| ctx.to_mont(b)).collect();
        let m = self.fold_range_mont(ctx, &mont, start)?;
        Ok(ctx.from_mont(&m))
    }

    /// As [`MultiExpPlan::fold_range`] with bases already in Montgomery
    /// form; the result stays in Montgomery form (the server hot path).
    ///
    /// # Errors
    /// [`BignumError::ValueTooLarge`] when the range falls outside the
    /// plan.
    pub fn fold_range_mont(
        &self,
        ctx: &Montgomery,
        bases: &[MontElem],
        start: usize,
    ) -> Result<MontElem, BignumError> {
        self.fold_range_mont_with_window(ctx, bases, start, self.window_bits_for(bases.len()))
    }

    /// As [`MultiExpPlan::fold_range_mont`] but with a caller-forced
    /// effective window width (the bench's window-width sweep).
    ///
    /// # Errors
    /// [`BignumError::ValueTooLarge`] on a bad range or a width that is
    /// not a positive multiple of 4 up to 16.
    pub fn fold_range_mont_with_window(
        &self,
        ctx: &Montgomery,
        bases: &[MontElem],
        start: usize,
        window_bits: usize,
    ) -> Result<MontElem, BignumError> {
        if window_bits == 0
            || !window_bits.is_multiple_of(BASE_WINDOW_BITS)
            || window_bits > MAX_WINDOW_BITS
        {
            return Err(BignumError::ValueTooLarge {
                bits: window_bits,
                capacity_bits: MAX_WINDOW_BITS,
            });
        }
        if start
            .checked_add(bases.len())
            .filter(|&e| e <= self.rows)
            .is_none()
        {
            return Err(BignumError::ValueTooLarge {
                bits: start.saturating_add(bases.len()),
                capacity_bits: self.rows,
            });
        }
        // How many stored 4-bit digits merge into one effective window.
        let merge = window_bits / BASE_WINDOW_BITS;
        let eff_windows = self.windows.div_ceil(merge);
        let mut acc: Option<MontElem> = None;
        let mut buckets: Vec<Option<MontElem>> = vec![None; 1usize << window_bits];
        for ew in (0..eff_windows).rev() {
            if acc.is_some() {
                for _ in 0..window_bits {
                    acc = acc.map(|a| ctx.square(&a));
                }
            }
            // Scatter: one multiplication per base with a nonzero digit.
            let mut any = false;
            for (i, base) in bases.iter().enumerate() {
                let d = self.effective_digit(start + i, ew, merge);
                if d != 0 {
                    any = true;
                    buckets[d] = Some(match buckets[d].take() {
                        Some(v) => ctx.mul(&v, base),
                        None => base.clone(),
                    });
                }
            }
            if !any {
                continue;
            }
            // Shared bucket reduction: Π_d bucket[d]^d via the running
            // suffix product (Pippenger), ≈ 2·2^w muls for the whole
            // batch. `take()` drains the buckets for the next window.
            let mut running: Option<MontElem> = None;
            let mut sum: Option<MontElem> = None;
            for d in (1..buckets.len()).rev() {
                if let Some(b) = buckets[d].take() {
                    running = Some(match running.take() {
                        Some(r) => ctx.mul(&r, &b),
                        None => b,
                    });
                }
                if let Some(r) = &running {
                    sum = Some(match sum.take() {
                        Some(s) => ctx.mul(&s, r),
                        None => r.clone(),
                    });
                }
            }
            acc = match (acc, sum) {
                (Some(a), Some(s)) => Some(ctx.mul(&a, &s)),
                (None, s) => s,
                (a, None) => a,
            };
        }
        Ok(acc.unwrap_or_else(|| ctx.one()))
    }

    /// Merges `merge` adjacent stored 4-bit digits of `row` into the
    /// effective digit for effective-window `ew`.
    #[inline]
    fn effective_digit(&self, row: usize, ew: usize, merge: usize) -> usize {
        let lo = ew * merge;
        let hi = (lo + merge).min(self.windows);
        let mut d = 0usize;
        for (shift, w) in (lo..hi).enumerate() {
            d |= (self.digits[w * self.rows + row] as usize) << (BASE_WINDOW_BITS * shift);
        }
        d
    }
}

/// The recoded window digits of one **fixed** exponent, built once per
/// key so repeated `baseᵏ` calls (the client's `r^N` randomizer path)
/// skip the exponent bit-scan that [`Montgomery::pow_mont`] redoes on
/// every call. The per-call cost that remains — the 16-entry base-power
/// table and the square/multiply chain — is inherent, because the base
/// changes every call (fixed-*exponent*, not fixed-*base*,
/// precomputation).
///
/// Produces bit-identical results to [`Montgomery::pow_mont`] with the
/// same exponent.
///
/// # Examples
///
/// ```
/// use pps_bignum::{FixedExponentPlan, Montgomery, Uint};
///
/// let ctx = Montgomery::new(Uint::from_u64(1_000_003)).unwrap();
/// let plan = FixedExponentPlan::new(&Uint::from_u64(65_537));
/// let got = plan.pow(&ctx, &Uint::from_u64(42));
/// assert_eq!(got, ctx.pow(&Uint::from_u64(42), &Uint::from_u64(65_537)).unwrap());
/// ```
#[derive(Clone, Debug)]
pub struct FixedExponentPlan {
    /// 4-bit window digits of the exponent, most-significant first,
    /// with the leading all-zero windows trimmed. Empty iff exp == 0.
    digits: Vec<u8>,
}

impl FixedExponentPlan {
    /// Recodes `exp` into most-significant-first 4-bit window digits.
    pub fn new(exp: &Uint) -> Self {
        let bits = exp.bit_len();
        let top = bits.div_ceil(BASE_WINDOW_BITS);
        let mut digits = Vec::with_capacity(top);
        for w in (0..top).rev() {
            let mut d = 0u8;
            for b in 0..BASE_WINDOW_BITS {
                if exp.bit(w * BASE_WINDOW_BITS + b) {
                    d |= 1 << b;
                }
            }
            digits.push(d);
        }
        // Trim leading zero windows so evaluation starts at the first
        // significant digit (bit_len > 0 guarantees at most none here,
        // but an all-zero exponent must yield an empty schedule).
        let first = digits.iter().position(|&d| d != 0).unwrap_or(digits.len());
        digits.drain(..first);
        FixedExponentPlan { digits }
    }

    /// Heap bytes held by the recoded digit schedule.
    pub fn table_bytes(&self) -> usize {
        self.digits.len()
    }

    /// `base^exp` with the base already in Montgomery form; the result
    /// stays in Montgomery form.
    pub fn pow_mont(&self, ctx: &Montgomery, base: &MontElem) -> MontElem {
        if self.digits.is_empty() {
            return ctx.one();
        }
        // Per-call base-power table (the base is fresh every call).
        let table_len = 1usize << BASE_WINDOW_BITS;
        let mut table = Vec::with_capacity(table_len);
        table.push(ctx.one());
        table.push(base.clone());
        for i in 2..table_len {
            table.push(ctx.mul(&table[i - 1], base));
        }
        let mut acc: Option<MontElem> = None;
        for &d in &self.digits {
            if let Some(a) = acc.take() {
                let mut sq = a;
                for _ in 0..BASE_WINDOW_BITS {
                    sq = ctx.square(&sq);
                }
                acc = Some(if d != 0 {
                    ctx.mul(&sq, &table[d as usize])
                } else {
                    sq
                });
            } else {
                // First digit is nonzero by construction (trimmed).
                acc = Some(table[d as usize].clone());
            }
        }
        acc.unwrap_or_else(|| ctx.one())
    }

    /// `base^exp mod n` for an ordinary base; the result is ordinary.
    pub fn pow(&self, ctx: &Montgomery, base: &Uint) -> Uint {
        ctx.from_mont(&self.pow_mont(ctx, &ctx.to_mont(base)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx(bits: usize, seed: u64) -> Montgomery {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = Uint::random_bits_exact(&mut rng, bits);
        n.set_bit(0, true);
        Montgomery::new(n).unwrap()
    }

    #[test]
    fn empty_plan_folds_to_one() {
        let c = ctx(128, 1);
        let plan = MultiExpPlan::build(&[]);
        assert_eq!(plan.rows(), 0);
        assert_eq!(plan.table_bytes(), 0);
        assert_eq!(plan.fold_range(&c, &[], 0).unwrap(), Uint::one());
    }

    #[test]
    fn all_zero_exponents_fold_to_one() {
        let c = ctx(128, 2);
        let plan = MultiExpPlan::build(&[0, 0, 0]);
        let bases = [Uint::from_u64(7), Uint::from_u64(9), Uint::from_u64(11)];
        assert_eq!(plan.fold_range(&c, &bases, 0).unwrap(), Uint::one());
    }

    #[test]
    fn matches_straus_over_random_inputs() {
        let c = ctx(256, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for count in [1usize, 2, 7, 33, 100] {
            let exps: Vec<u64> = (0..count).map(|_| rng.gen::<u32>() as u64).collect();
            let bases: Vec<Uint> = (0..count)
                .map(|_| Uint::random_below(&mut rng, c.modulus()).unwrap())
                .collect();
            let plan = MultiExpPlan::build(&exps);
            let exps_u: Vec<Uint> = exps.iter().map(|&x| Uint::from_u64(x)).collect();
            let want = c.multi_pow(&bases, &exps_u);
            assert_eq!(
                plan.fold_range(&c, &bases, 0).unwrap(),
                want,
                "count={count}"
            );
        }
    }

    #[test]
    fn every_window_width_agrees() {
        let c = ctx(192, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let exps: Vec<u64> = (0..40).map(|_| rng.gen::<u32>() as u64).collect();
        let bases: Vec<MontElem> = (0..40)
            .map(|_| c.to_mont(&Uint::random_below(&mut rng, c.modulus()).unwrap()))
            .collect();
        let plan = MultiExpPlan::build(&exps);
        let exps_u: Vec<Uint> = exps.iter().map(|&x| Uint::from_u64(x)).collect();
        let want = c.multi_pow_mont(&bases, &exps_u);
        for w in [4usize, 8, 12, 16] {
            assert_eq!(
                plan.fold_range_mont_with_window(&c, &bases, 0, w).unwrap(),
                want,
                "window={w}"
            );
        }
    }

    #[test]
    fn range_folds_compose_like_one_fold() {
        // Streaming batches must multiply up to the same product as one
        // whole-database fold — the server's resume invariant.
        let c = ctx(256, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let n = 57usize;
        let exps: Vec<u64> = (0..n).map(|_| rng.gen::<u32>() as u64).collect();
        let bases: Vec<Uint> = (0..n)
            .map(|_| Uint::random_below(&mut rng, c.modulus()).unwrap())
            .collect();
        let plan = MultiExpPlan::build(&exps);
        let whole = plan.fold_range(&c, &bases, 0).unwrap();
        let mut acc = Uint::one();
        let mut cursor = 0usize;
        for chunk in bases.chunks(13) {
            let part = plan.fold_range(&c, chunk, cursor).unwrap();
            acc = acc.mod_mul(&part, c.modulus()).unwrap();
            cursor += chunk.len();
        }
        assert_eq!(acc, whole);
    }

    #[test]
    fn out_of_range_rejected() {
        let c = ctx(128, 9);
        let plan = MultiExpPlan::build(&[1, 2, 3]);
        let bases = [Uint::from_u64(5), Uint::from_u64(6)];
        assert!(plan.fold_range(&c, &bases, 2).is_err());
        assert!(plan.fold_range(&c, &bases, usize::MAX).is_err());
        assert!(plan.fold_range(&c, &bases, 1).is_ok());
    }

    #[test]
    fn bad_window_width_rejected() {
        let c = ctx(128, 10);
        let plan = MultiExpPlan::build(&[1, 2, 3]);
        let bases = [c.to_mont(&Uint::from_u64(5))];
        for w in [0usize, 3, 5, 20] {
            assert!(
                plan.fold_range_mont_with_window(&c, &bases, 0, w).is_err(),
                "window={w}"
            );
        }
    }

    #[test]
    fn cost_model_prefers_small_windows_for_small_batches() {
        let plan = MultiExpPlan::build(&(0..100_000u64).map(|i| i % 997).collect::<Vec<_>>());
        assert_eq!(plan.window_bits_for(10), 4);
        assert!(plan.window_bits_for(100_000) >= 8);
    }

    #[test]
    fn table_bytes_scales_with_rows_and_width() {
        // 32-bit exponents → 8 stored windows → 8 bytes per row.
        let exps: Vec<u64> = (0..1000).map(|i| (i as u64) | 0x8000_0000).collect();
        let plan = MultiExpPlan::build(&exps);
        assert_eq!(plan.table_bytes(), 8 * 1000);
    }

    #[test]
    fn fixed_exponent_plan_matches_pow_mont() {
        let c = ctx(256, 11);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let bits = 1 + rng.gen_range(0..200);
            let exp = Uint::random_bits_exact(&mut rng, bits);
            let plan = FixedExponentPlan::new(&exp);
            let base = Uint::random_below(&mut rng, c.modulus()).unwrap();
            assert_eq!(plan.pow(&c, &base), c.pow(&base, &exp).unwrap());
        }
    }

    #[test]
    fn fixed_exponent_plan_edge_cases() {
        let c = ctx(128, 13);
        let zero = FixedExponentPlan::new(&Uint::zero());
        assert_eq!(zero.pow(&c, &Uint::from_u64(5)), Uint::one());
        assert_eq!(zero.table_bytes(), 0);
        let one = FixedExponentPlan::new(&Uint::one());
        assert_eq!(one.pow(&c, &Uint::from_u64(5)), Uint::from_u64(5));
        let plan = FixedExponentPlan::new(&Uint::from_u64(16));
        assert_eq!(plan.pow(&c, &Uint::from_u64(2)), Uint::from_u64(65536));
    }
}
