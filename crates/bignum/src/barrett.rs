//! Barrett reduction: fast reduction modulo a fixed modulus of **any**
//! parity.
//!
//! [`Montgomery`](crate::Montgomery) is the workhorse for Paillier's odd
//! moduli, but it cannot handle even moduli and pays conversion costs for
//! one-shot reductions. A [`Barrett`] context precomputes
//! `μ = ⌊4^k / n⌋` (where `k` is the bit length of `n`) and reduces any
//! `x < n²` with two multiplications and at most two subtractions — the
//! classic HAC Algorithm 14.42. The ablation benches compare the three
//! strategies (division, Barrett, Montgomery) on protocol-shaped
//! workloads.

use crate::error::BignumError;
use crate::uint::Uint;

/// Precomputed context for Barrett reduction modulo a fixed `n >= 3`.
#[derive(Clone, Debug)]
pub struct Barrett {
    n: Uint,
    /// `μ = ⌊ 2^(2·shift) / n ⌋`.
    mu: Uint,
    /// Bit length of `n`.
    shift: usize,
}

impl Barrett {
    /// Builds a context for `n >= 2` (odd or even).
    ///
    /// # Errors
    /// [`BignumError::InvalidModulus`] for `n < 2`.
    pub fn new(n: Uint) -> Result<Self, BignumError> {
        if n.bit_len() < 2 {
            return Err(BignumError::InvalidModulus("Barrett modulus must be >= 2"));
        }
        let shift = n.bit_len();
        let mu = (&Uint::one().shl(2 * shift) / &n).clone();
        Ok(Barrett { n, mu, shift })
    }

    /// The modulus.
    pub fn modulus(&self) -> &Uint {
        &self.n
    }

    /// Reduces `x mod n` for any `x < n²` (larger inputs fall back to
    /// division).
    pub fn reduce(&self, x: &Uint) -> Uint {
        if x < &self.n {
            return x.clone();
        }
        if x.bit_len() > 2 * self.shift {
            // Outside the Barrett precondition; exact division fallback.
            return x.rem_of(&self.n).expect("n >= 2");
        }
        // q ≈ ⌊x / n⌋ computed as ((x >> (shift-1)) · μ) >> (shift+1).
        let q = (&x.shr(self.shift - 1) * &self.mu).shr(self.shift + 1);
        let mut r = x
            .checked_sub(&(&q * &self.n))
            .expect("Barrett estimate never exceeds the true quotient");
        // The estimate is off by at most 2.
        while r >= self.n {
            r = &r - &self.n;
        }
        r
    }

    /// `(a · b) mod n` for reduced operands.
    pub fn mul(&self, a: &Uint, b: &Uint) -> Uint {
        self.reduce(&(a * b))
    }

    /// `base^exp mod n` by square-and-multiply with Barrett reduction —
    /// the even-modulus counterpart of
    /// [`Montgomery::pow`](crate::Montgomery::pow).
    pub fn pow(&self, base: &Uint, exp: &Uint) -> Uint {
        if self.n.is_one() {
            return Uint::zero();
        }
        let base = self.reduce(base);
        if exp.is_zero() {
            return Uint::one();
        }
        let mut acc = Uint::one();
        for i in (0..exp.bit_len()).rev() {
            acc = self.mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mul(&acc, &base);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rejects_tiny_moduli() {
        assert!(Barrett::new(Uint::zero()).is_err());
        assert!(Barrett::new(Uint::one()).is_err());
        assert!(Barrett::new(Uint::from_u64(2)).is_ok());
    }

    #[test]
    fn reduce_matches_division_small() {
        for n in [2u64, 3, 10, 97, 256, 1_000_003] {
            let ctx = Barrett::new(Uint::from_u64(n)).unwrap();
            for x in [0u128, 1, 5, 1000, (n as u128) * (n as u128) - 1] {
                let got = ctx.reduce(&Uint::from_u128(x));
                assert_eq!(got, Uint::from_u128(x % n as u128), "x={x} n={n}");
            }
        }
    }

    #[test]
    fn reduce_matches_division_random_large() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..50 {
            let bits = rng.gen_range(65..512);
            let n = Uint::random_bits_exact(&mut rng, bits);
            if n.bit_len() < 2 {
                continue;
            }
            let ctx = Barrett::new(n.clone()).unwrap();
            // x uniform below n².
            let x = Uint::random_below(&mut rng, &n.square()).unwrap();
            assert_eq!(ctx.reduce(&x), x.rem_of(&n).unwrap());
        }
    }

    #[test]
    fn even_modulus_supported() {
        // The case Montgomery cannot do.
        let n = Uint::from_u64(1 << 20);
        let ctx = Barrett::new(n.clone()).unwrap();
        let x = Uint::from_u128(0xdead_beef_cafe_babe);
        assert_eq!(ctx.reduce(&x), x.rem_of(&n).unwrap());
        assert_eq!(
            ctx.pow(&Uint::from_u64(3), &Uint::from_u64(40)),
            Uint::from_u64(3).mod_pow(&Uint::from_u64(40), &n).unwrap()
        );
    }

    #[test]
    fn pow_matches_generic_and_montgomery() {
        let mut rng = StdRng::seed_from_u64(72);
        let mut n = Uint::random_bits_exact(&mut rng, 256);
        n.set_bit(0, true); // odd, so Montgomery is comparable
        let barrett = Barrett::new(n.clone()).unwrap();
        let mont = crate::Montgomery::new(n.clone()).unwrap();
        for _ in 0..10 {
            let base = Uint::random_below(&mut rng, &n).unwrap();
            let exp = Uint::random_below_bits(&mut rng, 64);
            let b = barrett.pow(&base, &exp);
            assert_eq!(b, base.mod_pow(&exp, &n).unwrap());
            assert_eq!(b, mont.pow(&base, &exp).unwrap());
        }
    }

    #[test]
    fn oversized_input_fallback() {
        let n = Uint::from_u64(1_000_003);
        let ctx = Barrett::new(n.clone()).unwrap();
        // x far above n²: exercises the division fallback.
        let x = Uint::one().shl(300);
        assert_eq!(ctx.reduce(&x), x.rem_of(&n).unwrap());
    }

    #[test]
    fn pow_edge_cases() {
        let ctx = Barrett::new(Uint::from_u64(97)).unwrap();
        assert_eq!(ctx.pow(&Uint::from_u64(5), &Uint::zero()), Uint::one());
        assert_eq!(ctx.pow(&Uint::zero(), &Uint::from_u64(9)), Uint::zero());
        assert_eq!(
            ctx.pow(&Uint::from_u64(96), &Uint::from_u64(2)),
            Uint::one()
        );
    }
}
