//! Montgomery modular arithmetic context.
//!
//! A [`Montgomery`] context precomputes everything needed for fast repeated
//! multiplication and exponentiation modulo a fixed **odd** modulus `n`:
//! the Montgomery radix `R = 2^(64·k)` (where `k` is the limb count of
//! `n`), `R² mod n` for conversions, and `n' = -n⁻¹ mod 2^64` for the REDC
//! step. This is the workhorse behind Paillier encryption (`r^N mod N²`),
//! the server's homomorphic product, and primality testing.
//!
//! # Examples
//!
//! ```
//! use pps_bignum::{Montgomery, Uint};
//!
//! let n = Uint::from_u64(97);
//! let ctx = Montgomery::new(n).unwrap();
//! let r = ctx.pow(&Uint::from_u64(5), &Uint::from_u64(96)).unwrap();
//! assert_eq!(r, Uint::one()); // Fermat
//! ```

use crate::error::BignumError;
use crate::uint::Uint;

/// Window size (bits) for fixed-window exponentiation.
const WINDOW_BITS: usize = 4;

/// Precomputed context for arithmetic modulo a fixed odd modulus.
#[derive(Clone, Debug)]
pub struct Montgomery {
    /// The modulus; odd, >= 3.
    n: Uint,
    /// Limb count of `n`; `R = 2^(64 * limbs)`.
    limbs: usize,
    /// `-n⁻¹ mod 2^64`.
    n_prime: u64,
    /// `R mod n` (the Montgomery form of 1).
    r_mod_n: Uint,
    /// `R² mod n`, used to convert into Montgomery form.
    r2_mod_n: Uint,
}

/// A value held in Montgomery form with respect to some context.
///
/// Thin wrapper to keep ordinary and Montgomery representations from being
/// mixed accidentally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MontElem(Uint);

// Compile-time audit: both the parallel server fold
// (`Montgomery::multi_pow_parallel`) and the client's parallel encryption
// engine (`pps-crypto`) share one context read-only across scoped worker
// threads, so `Montgomery` must stay `Send + Sync`. All fields are owned
// `Uint`s (heap `Vec<u64>`) and plain integers — no interior mutability —
// and any future addition of e.g. a lazily-populated cache behind a
// `Cell`/`RefCell` would silently serialize or break those callers; this
// assertion turns that into a build failure.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Montgomery>();
    assert_send_sync::<MontElem>();
};

impl Montgomery {
    /// Builds a context for the odd modulus `n >= 3`.
    ///
    /// # Errors
    /// Returns [`BignumError::InvalidModulus`] for even or tiny moduli.
    pub fn new(n: Uint) -> Result<Self, BignumError> {
        if n.is_even() {
            return Err(BignumError::InvalidModulus(
                "Montgomery modulus must be odd",
            ));
        }
        if n.bit_len() < 2 {
            return Err(BignumError::InvalidModulus(
                "Montgomery modulus must be >= 3",
            ));
        }
        let limbs = n.limbs().len();
        let n0 = n.limbs()[0];
        let n_prime = inv_mod_2_64(n0).wrapping_neg();
        let r = Uint::one().shl(limbs * 64);
        let r_mod_n = r.rem_of(&n)?;
        let r2_mod_n = r_mod_n.mod_mul(&r_mod_n, &n)?;
        Ok(Montgomery {
            n,
            limbs,
            n_prime,
            r_mod_n,
            r2_mod_n,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Uint {
        &self.n
    }

    /// Converts an ordinary value (reduced mod `n` first) into Montgomery
    /// form.
    pub fn to_mont(&self, v: &Uint) -> MontElem {
        let reduced = v.rem_of(&self.n).expect("modulus != 0");
        MontElem(self.redc_mul(&reduced, &self.r2_mod_n))
    }

    /// Converts back from Montgomery form to an ordinary value in `[0, n)`.
    pub fn from_mont(&self, v: &MontElem) -> Uint {
        self.redc_mul(&v.0, &Uint::one())
    }

    /// The Montgomery form of 1.
    pub fn one(&self) -> MontElem {
        MontElem(self.r_mod_n.clone())
    }

    /// Montgomery product of two elements.
    pub fn mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        MontElem(self.redc_mul(&a.0, &b.0))
    }

    /// Montgomery square.
    pub fn square(&self, a: &MontElem) -> MontElem {
        MontElem(self.redc_mul(&a.0, &a.0))
    }

    /// `base^exp mod n` using 4-bit fixed-window exponentiation.
    ///
    /// # Errors
    /// Propagates reduction errors (none in practice for a valid context).
    pub fn pow(&self, base: &Uint, exp: &Uint) -> Result<Uint, BignumError> {
        let m = self.pow_mont(&self.to_mont(base), exp);
        Ok(self.from_mont(&m))
    }

    /// Exponentiation with a base already in Montgomery form; the result
    /// stays in Montgomery form. Useful when chaining many operations.
    pub fn pow_mont(&self, base: &MontElem, exp: &Uint) -> MontElem {
        if exp.is_zero() {
            return self.one();
        }
        // Precompute base^0 .. base^(2^w - 1).
        let table_len = 1usize << WINDOW_BITS;
        let mut table = Vec::with_capacity(table_len);
        table.push(self.one());
        table.push(base.clone());
        for i in 2..table_len {
            table.push(self.mul(&table[i - 1], base));
        }

        let bits = exp.bit_len();
        let top_window = bits.div_ceil(WINDOW_BITS);
        let mut acc = self.one();
        let mut started = false;
        for w in (0..top_window).rev() {
            if started {
                for _ in 0..WINDOW_BITS {
                    acc = self.square(&acc);
                }
            }
            let mut digit = 0usize;
            for b in 0..WINDOW_BITS {
                let bit_index = w * WINDOW_BITS + b;
                if exp.bit(bit_index) {
                    digit |= 1 << b;
                }
            }
            if digit != 0 {
                acc = if started {
                    self.mul(&acc, &table[digit])
                } else {
                    table[digit].clone()
                };
                started = true;
            } else if started {
                // Nothing to multiply for an all-zero window.
            }
        }
        if !started {
            self.one()
        } else {
            acc
        }
    }

    /// Core REDC: computes `a·b·R⁻¹ mod n` for `a, b < n`.
    ///
    /// Implementation: full product then `limbs` rounds of single-limb
    /// Montgomery reduction (the "coarsely integrated" form, simple and
    /// fast enough for <= 4096-bit operands).
    fn redc_mul(&self, a: &Uint, b: &Uint) -> Uint {
        let k = self.limbs;
        // t = a * b, laid out in a fixed 2k+1 buffer.
        let mut t = vec![0u64; 2 * k + 1];
        for (i, &al) in a.limbs().iter().enumerate() {
            if al == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &bl) in b.limbs().iter().enumerate() {
                let p = al as u128 * bl as u128 + t[i + j] as u128 + carry as u128;
                t[i + j] = p as u64;
                carry = (p >> 64) as u64;
            }
            let mut idx = i + b.limbs().len();
            while carry != 0 {
                let (s, c) = t[idx].overflowing_add(carry);
                t[idx] = s;
                carry = c as u64;
                idx += 1;
            }
        }

        let nl = self.n.limbs();
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n_prime);
            if m == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &njl) in nl.iter().enumerate() {
                let p = m as u128 * njl as u128 + t[i + j] as u128 + carry as u128;
                t[i + j] = p as u64;
                carry = (p >> 64) as u64;
            }
            let mut idx = i + nl.len();
            while carry != 0 {
                let (s, c) = t[idx].overflowing_add(carry);
                t[idx] = s;
                carry = c as u64;
                idx += 1;
            }
        }

        let mut out = Uint::from_limbs(t[k..].to_vec());
        if out >= self.n {
            out = &out - &self.n;
        }
        out
    }
}

/// Inverse of an odd `x` modulo 2^64, by Newton–Hensel lifting
/// (5 iterations double the valid bits from 5 to 64+).
fn inv_mod_2_64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits (x * x ≡ 1 mod 8 for odd x)
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn inv_mod_2_64_correct() {
        for x in [1u64, 3, 5, 0xdead_beef | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv_mod_2_64(x)), 1, "x={x}");
        }
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(Montgomery::new(Uint::from_u64(10)).is_err());
        assert!(Montgomery::new(Uint::zero()).is_err());
        assert!(Montgomery::new(Uint::one()).is_err());
        assert!(Montgomery::new(Uint::from_u64(3)).is_ok());
    }

    #[test]
    fn to_from_mont_round_trip() {
        let n = Uint::from_decimal("100000000000000000000000000000000000133").unwrap();
        let ctx = Montgomery::new(n.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let v = Uint::from_u128(rng.gen::<u128>()).rem_of(&n).unwrap();
            assert_eq!(ctx.from_mont(&ctx.to_mont(&v)), v);
        }
    }

    #[test]
    fn mul_matches_generic() {
        let n = Uint::from_decimal("170141183460469231731687303715884105727").unwrap(); // 2^127-1
        let ctx = Montgomery::new(n.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let a = Uint::from_u128(rng.gen()).rem_of(&n).unwrap();
            let b = Uint::from_u128(rng.gen()).rem_of(&n).unwrap();
            let got = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
            assert_eq!(got, a.mod_mul(&b, &n).unwrap());
        }
    }

    #[test]
    fn pow_matches_generic() {
        let n = Uint::from_u64(1_000_000_007);
        let ctx = Montgomery::new(n.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let base = Uint::from_u64(rng.gen());
            let exp = Uint::from_u64(rng.gen::<u64>() >> rng.gen_range(0..60));
            assert_eq!(
                ctx.pow(&base, &exp).unwrap(),
                base.mod_pow(&exp, &n).unwrap(),
                "base={base} exp={exp}"
            );
        }
    }

    #[test]
    fn pow_edge_cases() {
        let n = Uint::from_u64(97);
        let ctx = Montgomery::new(n).unwrap();
        assert_eq!(
            ctx.pow(&Uint::from_u64(5), &Uint::zero()).unwrap(),
            Uint::one()
        );
        assert_eq!(
            ctx.pow(&Uint::zero(), &Uint::from_u64(5)).unwrap(),
            Uint::zero()
        );
        assert_eq!(
            ctx.pow(&Uint::from_u64(5), &Uint::one()).unwrap(),
            Uint::from_u64(5)
        );
        assert_eq!(
            ctx.pow(&Uint::from_u64(96), &Uint::from_u64(2)).unwrap(),
            Uint::one()
        );
    }

    #[test]
    fn pow_large_modulus() {
        // 512-bit odd modulus: exercise the multi-limb REDC path used by
        // Paillier with the paper's key size.
        let n = Uint::from_hex(
            "f3e9c1a75b20d4886e5a09f1c3b7d2594a6e8b0c7d1f2a3b4c5d6e7f8091a2b3\
             c4d5e6f708192a3b4c5d6e7f8091a2b3c4d5e6f708192a3b4c5d6e7f8091a2b5",
        )
        .unwrap();
        let ctx = Montgomery::new(n.clone()).unwrap();
        let base = Uint::from_u64(0xabcdef);
        let exp = Uint::from_u64(65_537);
        assert_eq!(
            ctx.pow(&base, &exp).unwrap(),
            base.mod_pow(&exp, &n).unwrap()
        );
    }

    #[test]
    fn pow_mont_chaining() {
        let n = Uint::from_u64(101);
        let ctx = Montgomery::new(n).unwrap();
        // (3^5)^2 == 3^10 via chained Montgomery ops.
        let b = ctx.to_mont(&Uint::from_u64(3));
        let p5 = ctx.pow_mont(&b, &Uint::from_u64(5));
        let p10 = ctx.pow_mont(&b, &Uint::from_u64(10));
        assert_eq!(ctx.mul(&p5, &p5), p10);
    }
}
