//! Plain (non-Montgomery) modular arithmetic on [`Uint`].
//!
//! These routines reduce via [`Uint::div_rem`]; they are correct for any
//! modulus. Hot paths (Paillier encryption/decryption, the server's
//! homomorphic product) should prefer [`crate::Montgomery`], which requires
//! an odd modulus but is several times faster for repeated operations.

use crate::error::BignumError;
use crate::uint::Uint;

impl Uint {
    /// `(self + rhs) mod m`. Operands need not be reduced.
    ///
    /// # Errors
    /// Returns [`BignumError::DivisionByZero`] when `m == 0`.
    pub fn mod_add(&self, rhs: &Uint, m: &Uint) -> Result<Uint, BignumError> {
        (self + rhs).rem_of(m)
    }

    /// `(self - rhs) mod m`, well-defined even when `rhs > self`.
    ///
    /// # Errors
    /// Returns [`BignumError::DivisionByZero`] when `m == 0`.
    pub fn mod_sub(&self, rhs: &Uint, m: &Uint) -> Result<Uint, BignumError> {
        let a = self.rem_of(m)?;
        let b = rhs.rem_of(m)?;
        if a >= b {
            Ok(&a - &b)
        } else {
            Ok(&(&a + m) - &b)
        }
    }

    /// `(self * rhs) mod m`.
    ///
    /// # Errors
    /// Returns [`BignumError::DivisionByZero`] when `m == 0`.
    pub fn mod_mul(&self, rhs: &Uint, m: &Uint) -> Result<Uint, BignumError> {
        (self * rhs).rem_of(m)
    }

    /// `(-self) mod m`, i.e. the additive inverse of `self mod m`.
    ///
    /// # Errors
    /// Returns [`BignumError::DivisionByZero`] when `m == 0`.
    pub fn mod_neg(&self, m: &Uint) -> Result<Uint, BignumError> {
        let r = self.rem_of(m)?;
        if r.is_zero() {
            Ok(r)
        } else {
            Ok(m - &r)
        }
    }

    /// `self^exp mod m` by square-and-multiply (left-to-right binary).
    ///
    /// Works for any modulus, including even ones; use
    /// [`crate::Montgomery::pow`] for odd moduli in hot paths.
    ///
    /// # Errors
    /// Returns [`BignumError::InvalidModulus`] when `m < 2`.
    pub fn mod_pow(&self, exp: &Uint, m: &Uint) -> Result<Uint, BignumError> {
        if m.is_zero() {
            return Err(BignumError::InvalidModulus("modulus is zero"));
        }
        if m.is_one() {
            return Ok(Uint::zero());
        }
        let base = self.rem_of(m)?;
        if exp.is_zero() {
            return Ok(Uint::one());
        }
        let mut acc = Uint::one();
        for i in (0..exp.bit_len()).rev() {
            acc = acc.mod_mul(&acc, m)?;
            if exp.bit(i) {
                acc = acc.mod_mul(&base, m)?;
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Uint {
        Uint::from_u64(v)
    }

    #[test]
    fn mod_add_wraps() {
        let m = u(97);
        assert_eq!(u(90).mod_add(&u(10), &m).unwrap(), u(3));
        assert_eq!(u(0).mod_add(&u(0), &m).unwrap(), u(0));
        // Unreduced operands are accepted.
        assert_eq!(u(1000).mod_add(&u(1000), &m).unwrap(), u(2000 % 97));
    }

    #[test]
    fn mod_sub_handles_negative_difference() {
        let m = u(97);
        assert_eq!(u(5).mod_sub(&u(10), &m).unwrap(), u(92));
        assert_eq!(u(10).mod_sub(&u(5), &m).unwrap(), u(5));
        assert_eq!(u(10).mod_sub(&u(10), &m).unwrap(), u(0));
    }

    #[test]
    fn mod_neg_inverse_property() {
        let m = u(101);
        for v in [0u64, 1, 50, 100, 1000] {
            let n = u(v).mod_neg(&m).unwrap();
            assert_eq!(u(v).mod_add(&n, &m).unwrap(), u(0), "v={v}");
        }
    }

    #[test]
    fn mod_pow_small_oracle() {
        let m = u(1_000_000_007);
        // 3^45 mod p computed independently.
        let mut expect = 1u64;
        for _ in 0..45 {
            expect = expect * 3 % 1_000_000_007;
        }
        assert_eq!(u(3).mod_pow(&u(45), &m).unwrap(), u(expect));
    }

    #[test]
    fn mod_pow_edge_cases() {
        let m = u(97);
        assert_eq!(u(5).mod_pow(&u(0), &m).unwrap(), u(1));
        assert_eq!(u(0).mod_pow(&u(5), &m).unwrap(), u(0));
        assert_eq!(u(5).mod_pow(&u(1), &m).unwrap(), u(5));
        // Modulus one collapses everything to zero.
        assert_eq!(u(5).mod_pow(&u(5), &u(1)).unwrap(), u(0));
        assert!(u(5).mod_pow(&u(5), &u(0)).is_err());
    }

    #[test]
    fn mod_pow_even_modulus() {
        // Montgomery cannot do this; the generic path must.
        let m = u(100);
        assert_eq!(u(7).mod_pow(&u(4), &m).unwrap(), u(7 * 7 * 7 * 7 % 100));
    }

    #[test]
    fn fermat_little_theorem() {
        let p = u(65_537);
        for a in [2u64, 3, 65_000] {
            assert_eq!(u(a).mod_pow(&u(65_536), &p).unwrap(), u(1), "a={a}");
        }
    }
}
