//! Division and remainder for [`Uint`] via Knuth's Algorithm D
//! (TAOCP Vol. 2, §4.3.1).

use std::ops::{Div, Rem};

use crate::error::BignumError;
use crate::uint::Uint;

impl Uint {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// # Errors
    /// Returns [`BignumError::DivisionByZero`] when `divisor == 0`.
    pub fn div_rem(&self, divisor: &Uint) -> Result<(Uint, Uint), BignumError> {
        if divisor.is_zero() {
            return Err(BignumError::DivisionByZero);
        }
        if self < divisor {
            return Ok((Uint::zero(), self.clone()));
        }
        if divisor.limbs().len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs()[0])?;
            return Ok((q, Uint::from_u64(r)));
        }
        Ok(knuth_d(self, divisor))
    }

    /// `self % modulus`, as a convenience over [`Uint::div_rem`].
    ///
    /// # Errors
    /// Returns [`BignumError::DivisionByZero`] when `modulus == 0`.
    pub fn rem_of(&self, modulus: &Uint) -> Result<Uint, BignumError> {
        Ok(self.div_rem(modulus)?.1)
    }
}

/// Knuth Algorithm D for divisors of at least two limbs.
///
/// Preconditions: `divisor.limbs().len() >= 2`, `dividend >= divisor`.
fn knuth_d(dividend: &Uint, divisor: &Uint) -> (Uint, Uint) {
    // D1: normalize so that the top divisor limb has its high bit set.
    let shift = divisor
        .limbs()
        .last()
        .expect("divisor >= 2 limbs")
        .leading_zeros() as usize;
    let u = dividend.shl(shift);
    let v = divisor.shl(shift);
    let n = v.limbs().len();
    let mut un: Vec<u64> = u.limbs().to_vec();
    // Ensure an extra high limb for the first iteration's window.
    un.push(0);
    let m = un.len() - 1 - n; // number of quotient limbs - 1
    let vn = v.limbs();
    let v_top = vn[n - 1];
    let v_next = vn[n - 2];

    let mut q = vec![0u64; m + 1];

    for j in (0..=m).rev() {
        // D3: estimate q̂ from the top two limbs of the current window.
        let numer = (un[j + n] as u128) << 64 | un[j + n - 1] as u128;
        let mut qhat = numer / v_top as u128;
        let mut rhat = numer % v_top as u128;
        // Refine: at most two corrections bring q̂ within 1 of the truth.
        while qhat >> 64 != 0 || qhat * v_next as u128 > (rhat << 64 | un[j + n - 2] as u128) {
            qhat -= 1;
            rhat += v_top as u128;
            if rhat >> 64 != 0 {
                break;
            }
        }

        // D4: multiply-and-subtract the window by q̂·v.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[j + i] as i128 - (p as u64) as i128 + borrow;
            un[j + i] = t as u64;
            borrow = t >> 64; // arithmetic shift: 0 or -1
        }
        let t = un[j + n] as i128 - carry as i128 + borrow;
        un[j + n] = t as u64;

        // D5/D6: if we over-subtracted (probability ~2/2^64), add back.
        if t < 0 {
            qhat -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let (s1, c1) = un[j + i].overflowing_add(vn[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                un[j + i] = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
            un[j + n] = un[j + n].wrapping_add(carry);
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let rem = Uint::from_limbs(un[..n].to_vec()).shr(shift);
    (Uint::from_limbs(q), rem)
}

impl Div<&Uint> for &Uint {
    type Output = Uint;

    /// Panics on division by zero; use [`Uint::div_rem`] to handle it.
    fn div(self, rhs: &Uint) -> Uint {
        self.div_rem(rhs).expect("division by zero").0
    }
}

impl Rem<&Uint> for &Uint {
    type Output = Uint;

    /// Panics on division by zero; use [`Uint::div_rem`] to handle it.
    fn rem(self, rhs: &Uint) -> Uint {
        self.div_rem(rhs).expect("division by zero").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_uint(rng: &mut StdRng, limbs: usize) -> Uint {
        Uint::from_limbs((0..limbs).map(|_| rng.gen()).collect())
    }

    #[test]
    fn div_by_zero_is_error() {
        assert!(Uint::one().div_rem(&Uint::zero()).is_err());
    }

    #[test]
    fn small_cases() {
        let (q, r) = Uint::from_u64(17).div_rem(&Uint::from_u64(5)).unwrap();
        assert_eq!((q, r), (Uint::from_u64(3), Uint::from_u64(2)));
        let (q, r) = Uint::from_u64(4).div_rem(&Uint::from_u64(5)).unwrap();
        assert_eq!((q, r), (Uint::zero(), Uint::from_u64(4)));
        let (q, r) = Uint::from_u64(5).div_rem(&Uint::from_u64(5)).unwrap();
        assert_eq!((q, r), (Uint::one(), Uint::zero()));
    }

    #[test]
    fn u128_oracle() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let a: u128 = rng.gen();
            let b: u128 = rng.gen::<u128>() >> (rng.gen_range(0..100));
            if b == 0 {
                continue;
            }
            let (q, r) = Uint::from_u128(a).div_rem(&Uint::from_u128(b)).unwrap();
            assert_eq!(q, Uint::from_u128(a / b), "a={a} b={b}");
            assert_eq!(r, Uint::from_u128(a % b), "a={a} b={b}");
        }
    }

    #[test]
    fn reconstruction_random_large() {
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            let a_limbs = rng.gen_range(1..20);
            let b_limbs = rng.gen_range(1..12);
            let a = random_uint(&mut rng, a_limbs);
            let b = random_uint(&mut rng, b_limbs);
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.div_rem(&b).unwrap();
            assert!(r < b, "remainder must be < divisor");
            assert_eq!(&(&q * &b) + &r, a, "q*b + r must reconstruct a");
        }
    }

    #[test]
    fn hard_case_requiring_correction() {
        // Dividend crafted so the initial q̂ over-estimates and the
        // add-back branch (step D6) executes: v has small second limb.
        let v = Uint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let u = &(&v * &Uint::from_limbs(vec![u64::MAX, u64::MAX]))
            + &Uint::from_limbs(vec![0, 0x7fff_ffff_ffff_ffff]);
        let (q, r) = u.div_rem(&v).unwrap();
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn exact_division() {
        let b = Uint::from_hex("fedcba9876543210fedcba9876543210").unwrap();
        let a = &b * &Uint::from_u64(1_000_003);
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q, Uint::from_u64(1_000_003));
        assert!(r.is_zero());
    }

    #[test]
    fn operators() {
        let a = Uint::from_u64(100);
        let b = Uint::from_u64(7);
        assert_eq!(&a / &b, Uint::from_u64(14));
        assert_eq!(&a % &b, Uint::from_u64(2));
    }

    #[test]
    fn power_of_two_divisors_match_shift() {
        let a = Uint::from_hex("123456789abcdef0123456789abcdef0123456789").unwrap();
        for k in [1usize, 64, 65, 130] {
            let d = Uint::one().shl(k);
            assert_eq!(&a / &d, a.shr(k), "k={k}");
        }
    }
}
