//! Random [`Uint`] sampling helpers.

use rand::RngCore;

use crate::error::BignumError;
use crate::uint::Uint;

impl Uint {
    /// Samples a uniform integer with exactly `bits` significant bits
    /// (the top bit is forced to 1), e.g. for prime candidates.
    ///
    /// `bits == 0` returns zero.
    pub fn random_bits_exact(rng: &mut dyn RngCore, bits: usize) -> Uint {
        if bits == 0 {
            return Uint::zero();
        }
        let mut v = Self::random_below_bits(rng, bits);
        v.set_bit(bits - 1, true);
        v
    }

    /// Samples a uniform integer in `[0, 2^bits)`.
    pub fn random_below_bits(rng: &mut dyn RngCore, bits: usize) -> Uint {
        if bits == 0 {
            return Uint::zero();
        }
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
        let top_bits = bits % 64;
        if top_bits != 0 {
            v[limbs - 1] &= (1u64 << top_bits) - 1;
        }
        Uint::from_limbs(v)
    }

    /// Samples a uniform integer in `[0, bound)` by rejection.
    ///
    /// # Errors
    /// Returns [`BignumError::EmptyRange`] when `bound == 0`.
    pub fn random_below(rng: &mut dyn RngCore, bound: &Uint) -> Result<Uint, BignumError> {
        if bound.is_zero() {
            return Err(BignumError::EmptyRange);
        }
        let bits = bound.bit_len();
        // Expected < 2 iterations: each draw lands below `bound` with
        // probability >= 1/2 since bound has `bits` bits.
        loop {
            let candidate = Self::random_below_bits(rng, bits);
            if &candidate < bound {
                return Ok(candidate);
            }
        }
    }

    /// Samples a uniform integer in `[low, high)`.
    ///
    /// # Errors
    /// Returns [`BignumError::EmptyRange`] when `low >= high`.
    pub fn random_range(
        rng: &mut dyn RngCore,
        low: &Uint,
        high: &Uint,
    ) -> Result<Uint, BignumError> {
        if low >= high {
            return Err(BignumError::EmptyRange);
        }
        let span = high - low;
        Ok(low + &Self::random_below(rng, &span)?)
    }

    /// Samples a uniform element of the multiplicative group `Z*_n`,
    /// i.e. a value in `[1, n)` coprime to `n`.
    ///
    /// # Errors
    /// Returns [`BignumError::EmptyRange`] when `n < 2`.
    pub fn random_coprime(rng: &mut dyn RngCore, n: &Uint) -> Result<Uint, BignumError> {
        if n.bit_len() < 2 {
            return Err(BignumError::EmptyRange);
        }
        loop {
            let candidate = Self::random_range(rng, &Uint::one(), n)?;
            if candidate.gcd(n).is_one() {
                return Ok(candidate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_bits() {
        let mut rng = StdRng::seed_from_u64(11);
        for bits in [1usize, 5, 63, 64, 65, 512] {
            let v = Uint::random_bits_exact(&mut rng, bits);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
        assert!(Uint::random_bits_exact(&mut rng, 0).is_zero());
    }

    #[test]
    fn below_bits_bound() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            let v = Uint::random_below_bits(&mut rng, 10);
            assert!(v < Uint::from_u64(1024));
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(13);
        let bound = Uint::from_u64(1000);
        for _ in 0..200 {
            assert!(Uint::random_below(&mut rng, &bound).unwrap() < bound);
        }
        assert!(Uint::random_below(&mut rng, &Uint::zero()).is_err());
    }

    #[test]
    fn random_below_covers_range() {
        // With bound 3 and 300 draws, all residues should appear.
        let mut rng = StdRng::seed_from_u64(14);
        let bound = Uint::from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..300 {
            let v = Uint::random_below(&mut rng, &bound)
                .unwrap()
                .to_u64()
                .unwrap();
            seen[v as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn random_range_bounds() {
        let mut rng = StdRng::seed_from_u64(15);
        let low = Uint::from_u64(100);
        let high = Uint::from_u64(110);
        for _ in 0..100 {
            let v = Uint::random_range(&mut rng, &low, &high).unwrap();
            assert!(v >= low && v < high);
        }
        assert!(Uint::random_range(&mut rng, &high, &low).is_err());
        assert!(Uint::random_range(&mut rng, &low, &low).is_err());
    }

    #[test]
    fn random_coprime_is_coprime() {
        let mut rng = StdRng::seed_from_u64(16);
        let n = Uint::from_u64(720); // plenty of small factors
        for _ in 0..50 {
            let v = Uint::random_coprime(&mut rng, &n).unwrap();
            assert!(v.gcd(&n).is_one());
            assert!(!v.is_zero() && v < n);
        }
        assert!(Uint::random_coprime(&mut rng, &Uint::one()).is_err());
    }
}
