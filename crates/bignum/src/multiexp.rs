//! Simultaneous multi-exponentiation (interleaved Straus/Shamir trick).
//!
//! The selected-sum server computes `Π bᵢ^{eᵢ} mod N²` over the whole
//! database — `n` bases with short (32-bit) exponents. Computing each
//! power independently costs ~`n·(W squarings + W/2 muls)` for `W`-bit
//! exponents; interleaving shares the squaring chain across **all**
//! bases: `W` squarings total plus one multiplication per set exponent
//! bit (~`n·W/2`), roughly halving the server's work and removing the
//! per-element squaring entirely. The `server_fold` ablation bench
//! quantifies the win at protocol shape.

use crate::montgomery::{MontElem, Montgomery};
use crate::uint::Uint;

impl Montgomery {
    /// Computes `Π basesᵢ^{expsᵢ} mod n` with a shared squaring chain.
    ///
    /// Bases are ordinary (non-Montgomery) values; the result is
    /// ordinary. Empty input yields 1.
    ///
    /// # Panics
    /// Panics when `bases` and `exps` lengths differ (caller bug).
    pub fn multi_pow(&self, bases: &[Uint], exps: &[Uint]) -> Uint {
        assert_eq!(bases.len(), exps.len(), "bases/exponents length mismatch");
        let m = self.multi_pow_mont(
            &bases.iter().map(|b| self.to_mont(b)).collect::<Vec<_>>(),
            exps,
        );
        self.from_mont(&m)
    }

    /// Parallel chunked variant of [`Montgomery::multi_pow`]: splits the
    /// input into up to `threads` contiguous chunks, runs the interleaved
    /// multi-exponentiation on each chunk in a scoped worker thread, and
    /// combines the partial products with one modular multiplication per
    /// chunk. Correct because the product factors over any partition:
    /// `Π_all bᵢ^{eᵢ} = Π_chunks (Π_chunk bᵢ^{eᵢ})`.
    ///
    /// Falls back to the sequential path for `threads <= 1` or inputs too
    /// small to amortize thread spawn. Empty input yields 1.
    ///
    /// # Panics
    /// Panics when `bases` and `exps` lengths differ (caller bug).
    pub fn multi_pow_parallel(&self, bases: &[Uint], exps: &[Uint], threads: usize) -> Uint {
        assert_eq!(bases.len(), exps.len(), "bases/exponents length mismatch");
        // Below this size the squaring-chain sharing lost to chunking and
        // the spawn overhead outweigh any parallel win.
        const MIN_PER_THREAD: usize = 16;
        let threads = threads.max(1).min(bases.len() / MIN_PER_THREAD.max(1));
        if threads <= 1 {
            return self.multi_pow(bases, exps);
        }
        let chunk = bases.len().div_ceil(threads);
        let partials: Vec<MontElem> = std::thread::scope(|s| {
            let handles: Vec<_> = bases
                .chunks(chunk)
                .zip(exps.chunks(chunk))
                .map(|(bc, ec)| {
                    s.spawn(move || {
                        let mont: Vec<MontElem> = bc.iter().map(|b| self.to_mont(b)).collect();
                        self.multi_pow_mont(&mont, ec)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("multi-exponentiation worker panicked"))
                .collect()
        });
        let mut acc = self.one();
        for p in &partials {
            acc = self.mul(&acc, p);
        }
        self.from_mont(&acc)
    }

    /// As [`Montgomery::multi_pow`] with bases already in Montgomery
    /// form; the result stays in Montgomery form. This is the server's
    /// hot path: ciphertexts can be converted once as they arrive.
    pub fn multi_pow_mont(&self, bases: &[MontElem], exps: &[Uint]) -> MontElem {
        assert_eq!(bases.len(), exps.len(), "bases/exponents length mismatch");
        let max_bits = exps.iter().map(|e| e.bit_len()).max().unwrap_or(0);
        let mut acc = self.one();
        if max_bits == 0 {
            return acc;
        }
        let mut started = false;
        for bit in (0..max_bits).rev() {
            if started {
                acc = self.square(&acc);
            }
            for (base, exp) in bases.iter().zip(exps) {
                if exp.bit(bit) {
                    acc = self.mul(&acc, base);
                    started = true;
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx(bits: usize, seed: u64) -> Montgomery {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = Uint::random_bits_exact(&mut rng, bits);
        n.set_bit(0, true);
        Montgomery::new(n).unwrap()
    }

    fn naive(ctx: &Montgomery, bases: &[Uint], exps: &[Uint]) -> Uint {
        let mut acc = Uint::one();
        for (b, e) in bases.iter().zip(exps) {
            let p = ctx.pow(b, e).unwrap();
            acc = acc.mod_mul(&p, ctx.modulus()).unwrap();
        }
        acc
    }

    #[test]
    fn empty_input_is_one() {
        let c = ctx(128, 1);
        assert_eq!(c.multi_pow(&[], &[]), Uint::one());
    }

    #[test]
    fn single_base_matches_pow() {
        let c = ctx(128, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let b = Uint::random_below(&mut rng, c.modulus()).unwrap();
            let e = Uint::from_u64(rng.gen());
            assert_eq!(
                c.multi_pow(std::slice::from_ref(&b), std::slice::from_ref(&e)),
                c.pow(&b, &e).unwrap()
            );
        }
    }

    #[test]
    fn matches_naive_product() {
        let c = ctx(256, 4);
        let mut rng = StdRng::seed_from_u64(5);
        for count in [2usize, 5, 17, 40] {
            let bases: Vec<Uint> = (0..count)
                .map(|_| Uint::random_below(&mut rng, c.modulus()).unwrap())
                .collect();
            let exps: Vec<Uint> = (0..count)
                .map(|_| Uint::from_u64(rng.gen::<u32>() as u64))
                .collect();
            assert_eq!(
                c.multi_pow(&bases, &exps),
                naive(&c, &bases, &exps),
                "count={count}"
            );
        }
    }

    #[test]
    fn zero_exponents_ignored() {
        let c = ctx(128, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let b1 = Uint::random_below(&mut rng, c.modulus()).unwrap();
        let b2 = Uint::random_below(&mut rng, c.modulus()).unwrap();
        let e = Uint::from_u64(12345);
        let got = c.multi_pow(&[b1.clone(), b2], &[e.clone(), Uint::zero()]);
        assert_eq!(got, c.pow(&b1, &e).unwrap());
        // All-zero exponents give 1.
        let b3 = Uint::random_below(&mut rng, c.modulus()).unwrap();
        assert_eq!(c.multi_pow(&[b3], &[Uint::zero()]), Uint::one());
    }

    #[test]
    fn mixed_exponent_widths() {
        let c = ctx(192, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let bases: Vec<Uint> = (0..4)
            .map(|_| Uint::random_below(&mut rng, c.modulus()).unwrap())
            .collect();
        let exps = vec![
            Uint::one(),
            Uint::from_u64(u64::MAX),
            Uint::from_u64(2),
            Uint::from_u128(1u128 << 100),
        ];
        assert_eq!(c.multi_pow(&bases, &exps), naive(&c, &bases, &exps));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let c = ctx(128, 10);
        let _ = c.multi_pow(&[Uint::one()], &[]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = ctx(256, 11);
        let mut rng = StdRng::seed_from_u64(12);
        for count in [0usize, 1, 15, 16, 33, 64, 200] {
            let bases: Vec<Uint> = (0..count)
                .map(|_| Uint::random_below(&mut rng, c.modulus()).unwrap())
                .collect();
            let exps: Vec<Uint> = (0..count)
                .map(|_| Uint::from_u64(rng.gen::<u32>() as u64))
                .collect();
            let seq = c.multi_pow(&bases, &exps);
            for threads in [1usize, 2, 3, 4, 8] {
                assert_eq!(
                    c.multi_pow_parallel(&bases, &exps, threads),
                    seq,
                    "count={count} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_small_input_falls_back() {
        let c = ctx(128, 13);
        let b = Uint::from_u64(7);
        let e = Uint::from_u64(9);
        // 1 element with 8 threads: must take the sequential path and
        // still be correct.
        assert_eq!(
            c.multi_pow_parallel(std::slice::from_ref(&b), std::slice::from_ref(&e), 8),
            c.pow(&b, &e).unwrap()
        );
    }
}
