//! Multiplication for [`Uint`]: schoolbook for small operands, Karatsuba
//! above [`KARATSUBA_THRESHOLD`] limbs.

use std::ops::{Mul, MulAssign};

use crate::uint::Uint;

/// Operand size (in limbs) above which Karatsuba is used.
///
/// Below this, the O(n²) schoolbook loop wins on constant factors; 512-bit
/// Paillier ciphertext arithmetic (16 limbs for N²) stays in the schoolbook
/// regime, while 2048-bit keys benefit from Karatsuba.
pub const KARATSUBA_THRESHOLD: usize = 32;

/// Schoolbook product of limb slices into a fresh vector.
fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &al) in a.iter().enumerate() {
        if al == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &bl) in b.iter().enumerate() {
            let t = al as u128 * bl as u128 + out[i + j] as u128 + carry as u128;
            out[i + j] = t as u64;
            carry = (t >> 64) as u64;
        }
        out[i + b.len()] = carry;
    }
    out
}

/// Karatsuba recursion on [`Uint`] values.
fn karatsuba(a: &Uint, b: &Uint) -> Uint {
    let n = a.limbs().len().min(b.limbs().len());
    if n < KARATSUBA_THRESHOLD {
        return Uint::from_limbs(schoolbook(a.limbs(), b.limbs()));
    }
    let half = n / 2;
    let split = |u: &Uint| -> (Uint, Uint) {
        let limbs = u.limbs();
        let lo = Uint::from_limbs(limbs[..half.min(limbs.len())].to_vec());
        let hi = if limbs.len() > half {
            Uint::from_limbs(limbs[half..].to_vec())
        } else {
            Uint::zero()
        };
        (lo, hi)
    };
    let (a0, a1) = split(a);
    let (b0, b1) = split(b);

    let z0 = karatsuba(&a0, &b0);
    let z2 = karatsuba(&a1, &b1);
    let (da, _sa) = a1.abs_diff(&a0);
    let (db, _sb) = b1.abs_diff(&b0);
    let neg_mid = _sa != _sb;
    let zmid = karatsuba(&da, &db);
    // z1 = a1*b0 + a0*b1 = z0 + z2 - sign*(a1-a0)(b1-b0)
    let z1 = if neg_mid {
        // (a1-a0)(b1-b0) < 0 so z1 = z0 + z2 + |mid|
        &(&z0 + &z2) + &zmid
    } else {
        (&z0 + &z2)
            .checked_sub(&zmid)
            .expect("Karatsuba middle term cannot exceed z0 + z2")
    };

    let shift = half * 64;
    &(&z2.shl(2 * shift) + &z1.shl(shift)) + &z0
}

impl Uint {
    /// `self * self`, slightly cheaper to call than `self * self` in hot
    /// code and clearer at call sites.
    pub fn square(&self) -> Uint {
        self * self
    }
}

impl Mul<&Uint> for &Uint {
    type Output = Uint;

    fn mul(self, rhs: &Uint) -> Uint {
        if self.is_zero() || rhs.is_zero() {
            return Uint::zero();
        }
        if self.limbs().len().min(rhs.limbs().len()) >= KARATSUBA_THRESHOLD {
            karatsuba(self, rhs)
        } else {
            Uint::from_limbs(schoolbook(self.limbs(), rhs.limbs()))
        }
    }
}

impl Mul<Uint> for Uint {
    type Output = Uint;

    fn mul(self, rhs: Uint) -> Uint {
        &self * &rhs
    }
}

impl MulAssign<&Uint> for Uint {
    fn mul_assign(&mut self, rhs: &Uint) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_uint(rng: &mut StdRng, limbs: usize) -> Uint {
        Uint::from_limbs((0..limbs).map(|_| rng.gen()).collect())
    }

    #[test]
    fn mul_small() {
        assert_eq!(&Uint::from_u64(6) * &Uint::from_u64(7), Uint::from_u64(42));
        assert_eq!(&Uint::zero() * &Uint::from_u64(7), Uint::zero());
        assert_eq!(&Uint::one() * &Uint::from_u64(7), Uint::from_u64(7));
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (u64::MAX as u128, u64::MAX as u128),
            (0x1234_5678_9abc_def0, 0xfedc_ba98_7654_3210),
            (1u128 << 63, 3),
        ];
        for (a, b) in cases {
            assert_eq!(
                &Uint::from_u128(a) * &Uint::from_u128(b),
                Uint::from_u128(a * b)
            );
        }
    }

    #[test]
    fn square_matches_mul() {
        let a = Uint::from_hex("deadbeefcafebabe1234567890abcdef").unwrap();
        assert_eq!(a.square(), &a * &a);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(42);
        for limbs in [
            KARATSUBA_THRESHOLD,
            KARATSUBA_THRESHOLD + 3,
            2 * KARATSUBA_THRESHOLD + 1,
        ] {
            for _ in 0..5 {
                let a = random_uint(&mut rng, limbs);
                let b = random_uint(&mut rng, limbs);
                let fast = karatsuba(&a, &b);
                let slow = Uint::from_limbs(schoolbook(a.limbs(), b.limbs()));
                assert_eq!(fast, slow, "limbs = {limbs}");
            }
        }
    }

    #[test]
    fn karatsuba_unbalanced_operands() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = random_uint(&mut rng, 3 * KARATSUBA_THRESHOLD);
        let b = random_uint(&mut rng, KARATSUBA_THRESHOLD);
        assert_eq!(
            karatsuba(&a, &b),
            Uint::from_limbs(schoolbook(a.limbs(), b.limbs()))
        );
    }

    #[test]
    fn distributive_law() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_uint(&mut rng, 10);
        let b = random_uint(&mut rng, 10);
        let c = random_uint(&mut rng, 10);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }
}
