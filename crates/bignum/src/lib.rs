//! # pps-bignum
//!
//! Arbitrary-precision unsigned integer arithmetic, built from scratch as
//! the substrate for the privacy-preserving statistics workspace
//! (reproduction of Subramaniam–Wright–Yang, *Experimental Analysis of
//! Privacy-Preserving Statistics Computation*, SDM/VLDB 2004).
//!
//! The paper's entire cost profile is 512-bit modular arithmetic — Paillier
//! key generation, per-element encryption (`r^N mod N²`), the server's
//! homomorphic product, and decryption — so this crate provides exactly
//! the primitives those need:
//!
//! * [`Uint`] — little-endian `u64`-limb unsigned integers with schoolbook
//!   + Karatsuba multiplication and Knuth Algorithm D division;
//! * modular arithmetic (generic, any modulus) and [`Montgomery`] contexts
//!   (odd moduli, several times faster for repeated work);
//! * [`Uint::gcd`] / [`Uint::mod_inverse`] via binary GCD and extended
//!   Euclid;
//! * Miller–Rabin primality and prime generation ([`Uint::is_prime`],
//!   [`Uint::generate_prime`]);
//! * [`Crt2`] Chinese-Remainder recombination (fast Paillier decryption);
//! * uniform random sampling over ranges and multiplicative groups.
//!
//! # Example: textbook RSA round trip
//!
//! ```
//! use pps_bignum::{Montgomery, Uint};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let p = Uint::generate_prime(&mut rng, 128).unwrap();
//! let q = Uint::generate_prime(&mut rng, 128).unwrap();
//! let n = &p * &q;
//! let phi = &(&p - &Uint::one()) * &(&q - &Uint::one());
//! let e = Uint::from_u64(65_537);
//! let d = e.mod_inverse(&phi).unwrap();
//!
//! let ctx = Montgomery::new(n).unwrap();
//! let msg = Uint::from_u64(42);
//! let ct = ctx.pow(&msg, &e).unwrap();
//! assert_eq!(ctx.pow(&ct, &d).unwrap(), msg);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod add;
mod barrett;
mod bits;
mod crt;
mod div;
mod error;
mod gcd;
mod modular;
mod montgomery;
mod mul;
mod multiexp;
mod multiexp_plan;
mod prime;
mod rand;
mod uint;

pub use barrett::Barrett;
pub use crt::{crt_combine, Crt2};
pub use error::BignumError;
pub use montgomery::{MontElem, Montgomery};
pub use mul::KARATSUBA_THRESHOLD;
pub use multiexp_plan::{FixedExponentPlan, MultiExpPlan};
pub use uint::{Uint, LIMB_BITS};
