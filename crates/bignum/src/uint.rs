//! The [`Uint`] arbitrary-precision unsigned integer type.
//!
//! Representation: little-endian vector of `u64` limbs, kept *normalized*
//! (no most-significant zero limbs). Zero is the empty limb vector. All
//! public constructors and operations preserve this invariant.

use std::cmp::Ordering;
use std::fmt;

use crate::error::BignumError;

/// Number of bits per limb.
pub const LIMB_BITS: usize = 64;

/// An arbitrary-precision unsigned integer.
///
/// `Uint` is the workhorse of the whole workspace: Paillier keys,
/// ciphertexts, and every modular operation in the protocol are built on
/// it. It is heap-allocated and grows as needed; arithmetic is implemented
/// for borrowed operands so that hot loops can avoid needless clones.
///
/// # Examples
///
/// ```
/// use pps_bignum::Uint;
///
/// let a = Uint::from_u64(1 << 40);
/// let b = &a * &a;
/// assert_eq!(b, Uint::from_u128(1u128 << 80));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Uint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    pub(crate) limbs: Vec<u64>,
}

impl Uint {
    /// The constant zero.
    pub fn zero() -> Self {
        Uint { limbs: Vec::new() }
    }

    /// The constant one.
    pub fn one() -> Self {
        Uint { limbs: vec![1] }
    }

    /// Builds a `Uint` from a single 64-bit value.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Uint { limbs: vec![v] }
        }
    }

    /// Builds a `Uint` from a 128-bit value.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        if hi == 0 {
            Self::from_u64(lo)
        } else {
            Uint {
                limbs: vec![lo, hi],
            }
        }
    }

    /// Builds a `Uint` from little-endian limbs, normalizing.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Uint { limbs }
    }

    /// Read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * LIMB_BITS + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / LIMB_BITS, i % LIMB_BITS);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / LIMB_BITS, i % LIMB_BITS);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * LIMB_BITS + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Converts to `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zero bytes introduced by limb padding.
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first);
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padding with
    /// zeros.
    ///
    /// # Errors
    /// Returns [`BignumError::ValueTooLarge`] if the value needs more than
    /// `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Result<Vec<u8>, BignumError> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return Err(BignumError::ValueTooLarge {
                bits: self.bit_len(),
                capacity_bits: len * 8,
            });
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// Parses big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        Self::from_limbs(limbs)
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    ///
    /// # Errors
    /// Returns [`BignumError::InvalidDigit`] on non-hex characters and
    /// [`BignumError::Empty`] for the empty string.
    pub fn from_hex(s: &str) -> Result<Self, BignumError> {
        if s.is_empty() {
            return Err(BignumError::Empty);
        }
        let mut out = Self::zero();
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(BignumError::InvalidDigit(c))? as u64;
            out = out.shl(4);
            if d != 0 {
                out = &out + &Uint::from_u64(d);
            }
        }
        Ok(out)
    }

    /// Formats as lowercase hexadecimal with no leading zeros (`"0"` for
    /// zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for &limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        s
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    /// Returns [`BignumError::InvalidDigit`] on non-decimal characters and
    /// [`BignumError::Empty`] for the empty string.
    pub fn from_decimal(s: &str) -> Result<Self, BignumError> {
        if s.is_empty() {
            return Err(BignumError::Empty);
        }
        let mut out = Self::zero();
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(BignumError::InvalidDigit(c))? as u64;
            out = out.mul_u64(10);
            out = out.add_u64(d);
        }
        Ok(out)
    }

    /// Formats as a decimal string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10).expect("10 != 0");
            digits.push(char::from(b'0' + r as u8));
            cur = q;
        }
        digits.iter().rev().collect()
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Uint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / LIMB_BITS;
        let bit_shift = bits % LIMB_BITS;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        Self::from_limbs(limbs)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Uint {
        let limb_shift = bits / LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (LIMB_BITS - bit_shift)
                } else {
                    0
                };
                limbs.push(lo | hi);
            }
        }
        Self::from_limbs(limbs)
    }

    /// `self + v` for a single limb.
    pub fn add_u64(&self, v: u64) -> Uint {
        if v == 0 {
            return self.clone();
        }
        let mut limbs = self.limbs.clone();
        let mut carry = v;
        for l in limbs.iter_mut() {
            let (s, c) = l.overflowing_add(carry);
            *l = s;
            if !c {
                carry = 0;
                break;
            }
            carry = 1;
        }
        if carry != 0 {
            limbs.push(carry);
        }
        Self::from_limbs(limbs)
    }

    /// `self * v` for a single limb.
    pub fn mul_u64(&self, v: u64) -> Uint {
        if v == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let prod = l as u128 * v as u128 + carry as u128;
            limbs.push(prod as u64);
            carry = (prod >> 64) as u64;
        }
        if carry != 0 {
            limbs.push(carry);
        }
        Self::from_limbs(limbs)
    }

    /// `(self / v, self % v)` for a single limb divisor.
    ///
    /// # Errors
    /// Returns [`BignumError::DivisionByZero`] when `v == 0`.
    pub fn div_rem_u64(&self, v: u64) -> Result<(Uint, u64), BignumError> {
        if v == 0 {
            return Err(BignumError::DivisionByZero);
        }
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u64;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            let cur = (rem as u128) << 64 | l as u128;
            q[i] = (cur / v as u128) as u64;
            rem = (cur % v as u128) as u64;
        }
        Ok((Self::from_limbs(q), rem))
    }

    /// Strips most-significant zero limbs (restores the invariant).
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl Ord for Uint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Uint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint(0x{})", self.to_hex())
    }
}

impl fmt::Display for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::LowerHex for Uint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<u64> for Uint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u32> for Uint {
    fn from(v: u32) -> Self {
        Self::from_u64(v as u64)
    }
}

impl From<u128> for Uint {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Uint::zero().is_zero());
        assert!(Uint::one().is_one());
        assert!(!Uint::one().is_zero());
        assert_eq!(Uint::zero().bit_len(), 0);
        assert_eq!(Uint::one().bit_len(), 1);
        assert!(Uint::zero().is_even());
        assert!(Uint::one().is_odd());
    }

    #[test]
    fn normalization_strips_zero_limbs() {
        let u = Uint::from_limbs(vec![5, 0, 0]);
        assert_eq!(u.limbs(), &[5]);
        let z = Uint::from_limbs(vec![0, 0]);
        assert!(z.is_zero());
    }

    #[test]
    fn bit_len_across_limb_boundary() {
        assert_eq!(Uint::from_u64(u64::MAX).bit_len(), 64);
        assert_eq!(Uint::from_u128(1u128 << 64).bit_len(), 65);
        assert_eq!(Uint::from_u128(u128::MAX).bit_len(), 128);
    }

    #[test]
    fn bit_get_set() {
        let mut u = Uint::zero();
        u.set_bit(100, true);
        assert!(u.bit(100));
        assert!(!u.bit(99));
        assert_eq!(u.bit_len(), 101);
        u.set_bit(100, false);
        assert!(u.is_zero());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(Uint::zero().trailing_zeros(), None);
        assert_eq!(Uint::one().trailing_zeros(), Some(0));
        assert_eq!(Uint::from_u128(1u128 << 77).trailing_zeros(), Some(77));
    }

    #[test]
    fn byte_round_trip() {
        let u = Uint::from_u128(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        let b = u.to_bytes_be();
        assert_eq!(Uint::from_bytes_be(&b), u);
        // Leading zeros tolerated on parse.
        let mut padded = vec![0u8; 5];
        padded.extend_from_slice(&b);
        assert_eq!(Uint::from_bytes_be(&padded), u);
    }

    #[test]
    fn byte_padding() {
        let u = Uint::from_u64(0xabcd);
        let b = u.to_bytes_be_padded(4).unwrap();
        assert_eq!(b, vec![0, 0, 0xab, 0xcd]);
        assert!(u.to_bytes_be_padded(1).is_err());
        assert_eq!(Uint::zero().to_bytes_be_padded(2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn hex_round_trip() {
        for s in ["0", "1", "ff", "deadbeefcafebabe0123456789abcdef00"] {
            let u = Uint::from_hex(s).unwrap();
            assert_eq!(Uint::from_hex(&u.to_hex()).unwrap(), u);
        }
        assert_eq!(Uint::from_hex("00ff").unwrap().to_hex(), "ff");
        assert!(Uint::from_hex("").is_err());
        assert!(Uint::from_hex("xyz").is_err());
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211455",
        ] {
            let u = Uint::from_decimal(s).unwrap();
            assert_eq!(u.to_decimal(), s);
        }
        assert!(Uint::from_decimal("12a").is_err());
    }

    #[test]
    fn shifts() {
        let u = Uint::from_u64(1);
        assert_eq!(u.shl(64), Uint::from_u128(1u128 << 64));
        assert_eq!(u.shl(65).shr(65), u);
        assert_eq!(u.shl(3), Uint::from_u64(8));
        assert_eq!(Uint::from_u64(8).shr(3), u);
        assert_eq!(Uint::from_u64(8).shr(4), Uint::zero());
        assert_eq!(u.shl(0), u);
        assert_eq!(Uint::from_u128(u128::MAX).shr(128), Uint::zero());
    }

    #[test]
    fn small_arithmetic_helpers() {
        assert_eq!(
            Uint::from_u64(u64::MAX).add_u64(1),
            Uint::from_u128(1u128 << 64)
        );
        assert_eq!(
            Uint::from_u64(u64::MAX).mul_u64(u64::MAX),
            Uint::from_u128(u64::MAX as u128 * u64::MAX as u128)
        );
        let (q, r) = Uint::from_u128(1_000_000_000_007u128 * 3 + 2)
            .div_rem_u64(3)
            .unwrap();
        assert_eq!(q, Uint::from_u128(1_000_000_000_007));
        assert_eq!(r, 2);
        assert!(Uint::one().div_rem_u64(0).is_err());
    }

    #[test]
    fn ordering() {
        let a = Uint::from_u64(5);
        let b = Uint::from_u128(1u128 << 64);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn conversions() {
        assert_eq!(Uint::from(7u32).to_u64(), Some(7));
        assert_eq!(Uint::from_u128(u128::MAX).to_u64(), None);
        assert_eq!(Uint::from_u128(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!(Uint::from_u128(u128::MAX).add_u64(1).to_u128(), None);
    }
}
