//! Private cohort statistics over a medical database.
//!
//! The scenario the paper's introduction motivates: a researcher wants
//! aggregate statistics (mean, variance) about a *private cohort* of
//! patients in a hospital's database. The hospital must not learn which
//! patients are in the cohort (it could deduce the study's focus); the
//! researcher must not see individual records.
//!
//! One pass of encrypted indices yields three aggregates — count, sum,
//! and sum of squares — from which mean, variance, and standard
//! deviation derive.
//!
//! Run with:
//! ```sh
//! cargo run --release -p pps --example medical_cohort
//! ```

use pps::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);

    // --- Hospital: systolic blood pressure for 500 patients. ---
    let n = 500;
    let pressures: Vec<u64> = (0..n).map(|_| rng.gen_range(95..180)).collect();
    let db = Database::new(pressures.clone()).expect("non-empty");

    // --- Researcher: a private cohort of ~15% of patients. ---
    let cohort = Selection::random(n, 0.15, &mut rng).expect("valid probability");
    let cohort_size = cohort.selected_count();
    println!("database: {n} patients; private cohort: {cohort_size} patients");

    let client = SumClient::generate(512, &mut rng).expect("keygen");

    let report = private_moments(&db, &cohort, &client, LinkProfile::gigabit_lan(), &mut rng)
        .expect("stats query");

    println!("\nprivately computed cohort statistics:");
    println!("  count    : {}", report.count.unwrap());
    println!("  sum      : {}", report.sum.unwrap());
    println!("  mean     : {:.2} mmHg", report.mean().unwrap());
    println!("  variance : {:.2}", report.variance().unwrap());
    println!("  std dev  : {:.2} mmHg", report.std_dev().unwrap());

    // Cross-check against the plaintext (which only this demo can see —
    // in deployment neither party could compute this directly).
    let selected: Vec<f64> = pressures
        .iter()
        .zip(cohort.weights())
        .filter(|(_, &w)| w == 1)
        .map(|(&p, _)| p as f64)
        .collect();
    let plain_mean = selected.iter().sum::<f64>() / selected.len() as f64;
    assert!((report.mean().unwrap() - plain_mean).abs() < 1e-9);
    println!("\nplaintext cross-check: mean {plain_mean:.2} ✓");

    println!(
        "\ncost: {:.1} ms client encryption, {:.1} ms server, {} B up / {} B down",
        report.timings.client_encrypt.as_secs_f64() * 1e3,
        report.timings.server_compute.as_secs_f64() * 1e3,
        report.timings.bytes_to_server,
        report.timings.bytes_to_client,
    );
    println!("note: three aggregates cost one upstream pass — the index vector is sent once.");
}
