//! Quickstart: one private selected-sum query, end to end.
//!
//! A server holds a small salary table; a client privately sums three
//! rows of its choosing. The server never learns which rows, the client
//! never learns the other salaries.
//!
//! Run with:
//! ```sh
//! cargo run --release -p pps --example quickstart
//! ```

use pps::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2004);

    // --- Server side: a database of 8 salaries. ---
    let salaries = vec![
        48_000u64, 52_000, 61_500, 45_000, 75_000, 58_000, 49_500, 67_000,
    ];
    let db = Database::new(salaries.clone()).expect("non-empty database");
    println!(
        "server database: {} rows (values hidden from the client)",
        db.len()
    );

    // --- Client side: privately select rows 1, 4, 6. ---
    let selection = Selection::from_indices(db.len(), &[1, 4, 6]).expect("valid indices");
    println!("client selection: rows 1, 4, 6 (hidden from the server)");

    // The paper's key size. Key generation dominates setup; the protocol
    // itself is linear in the database size.
    println!("generating 512-bit Paillier keypair…");
    let client = SumClient::generate(512, &mut rng).expect("key generation");

    // Run the unoptimized protocol over a simulated gigabit LAN.
    let report = pps::run_basic(
        &db,
        &selection,
        &client,
        LinkProfile::gigabit_lan(),
        &mut rng,
    )
    .expect("protocol run");

    println!("\nprivate result: {}", report.result);
    assert_eq!(report.result, 52_000 + 75_000 + 49_500);

    println!("\ntiming breakdown (the paper's four components):");
    println!(
        "  client encryption : {:>10.3} ms",
        report.client_encrypt.as_secs_f64() * 1e3
    );
    println!(
        "  server computation: {:>10.3} ms",
        report.server_compute.as_secs_f64() * 1e3
    );
    println!(
        "  communication     : {:>10.3} ms (simulated {})",
        report.comm.as_secs_f64() * 1e3,
        report.link
    );
    println!(
        "  client decryption : {:>10.3} ms",
        report.client_decrypt.as_secs_f64() * 1e3
    );
    println!(
        "  total online      : {:>10.3} ms",
        report.total_online().as_secs_f64() * 1e3
    );
    println!(
        "\ntraffic: {} B up ({} messages), {} B down",
        report.bytes_to_server, report.messages, report.bytes_to_client
    );
}
