//! Multi-client private survey aggregation (§3.5 of the paper).
//!
//! Three survey organizations each track a different third of a national
//! respondent panel. Together they want the total spending of their
//! combined (private) subsamples — but none may learn another's partial
//! sum, and the panel server may learn none of the selections.
//!
//! The server blinds each partial sum with `R_i` where `Σ R_i ≡ 0
//! (mod M)`; a ring pass over the clients cancels the blinding. The
//! payoff (paper Fig. 9): encryption work is split k ways, giving a
//! ≈k-fold speed-up.
//!
//! Run with:
//! ```sh
//! cargo run --release -p pps --example distributed_survey
//! ```

use pps::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31337);

    // --- Panel server: yearly spending (USD) of 600 respondents. ---
    let n = 600;
    let spending: Vec<u64> = (0..n).map(|_| rng.gen_range(1_000..50_000)).collect();
    let db = Database::new(spending).expect("non-empty");

    // --- Combined private selection across the three organizations. ---
    let selection = Selection::random(n, 0.3, &mut rng).expect("valid probability");
    println!(
        "panel: {n} respondents; combined private subsample: {}",
        selection.selected_count()
    );

    let k = 3;
    println!("running the {k}-client blinded-partial-sum protocol (512-bit keys)…");
    let multi = pps::run_multiclient(
        &db,
        &selection,
        k,
        512,
        LinkProfile::gigabit_lan(),
        &mut rng,
    )
    .expect("multi-client run");

    println!("\ncombined private total: ${}", multi.aggregate.result);

    println!("\nper-organization legs (each ran in parallel):");
    for (i, leg) in multi.legs.iter().enumerate() {
        println!(
            "  C{}: shard {:>3} rows | encrypt {:>8.2} ms | server {:>7.2} ms | comm {:>6.3} ms",
            i + 1,
            leg.shard_len,
            leg.encrypt.as_secs_f64() * 1e3,
            leg.server_compute.as_secs_f64() * 1e3,
            leg.comm.as_secs_f64() * 1e3,
        );
    }

    // The headline effect: parallel wall time ≈ 1/k of the serial work.
    let serial: f64 = multi.legs.iter().map(|l| l.total().as_secs_f64()).sum();
    let parallel = multi.aggregate.total_online().as_secs_f64();
    println!("\nserial work across clients : {:.1} ms", serial * 1e3);
    println!("parallel wall-clock model  : {:.1} ms", parallel * 1e3);
    println!(
        "speed-up                   : {:.2}x (paper Fig. 9 reports ≈2.99x for k = 3)",
        serial / parallel
    );
    println!(
        "ring combination overhead  : {:.3} ms",
        multi.ring_comm.as_secs_f64() * 1e3
    );
}
