//! Offline preprocessing for weak devices (§3.3 of the paper).
//!
//! "The optimization is useful for mobile devices, e.g. PDAs, that have
//! limited computing power but reasonable amounts of storage": the
//! device encrypts a pool of 0s and 1s overnight while charging; issuing
//! a query later costs only table lookups plus transmission.
//!
//! This example runs the same query twice — once encrypting online, once
//! from a pre-filled pool — and prints the online-time reduction (the
//! paper reports ≈82 % over a fast LAN).
//!
//! Run with:
//! ```sh
//! cargo run --release -p pps --example mobile_preprocessing
//! ```

use pps::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(404);

    let n = 400;
    let db = Database::random(n, 1 << 32, &mut rng).expect("paper workload: 32-bit values");
    let sel = Selection::random(n, 0.5, &mut rng).expect("valid probability");
    let client = SumClient::generate(512, &mut rng).expect("keygen");
    let link = LinkProfile::gigabit_lan();

    println!("database: {n} rows of 32-bit values; 512-bit keys\n");

    // --- 1. Unoptimized: all encryption happens online. ---
    let basic = pps::run_basic(&db, &sel, &client, link.clone(), &mut rng).expect("basic run");
    println!("online-only client (no preprocessing):");
    println!(
        "  online encryption : {:>9.2} ms",
        basic.client_encrypt.as_secs_f64() * 1e3
    );
    println!(
        "  total online      : {:>9.2} ms",
        basic.total_online().as_secs_f64() * 1e3
    );

    // --- 2. Preprocessed: the pool was filled "overnight". ---
    let prep = pps::run_preprocessed(&db, &sel, &client, link, &mut rng).expect("preprocessed run");
    println!("\npreprocessed client (E(0)/E(1) pool filled offline):");
    println!(
        "  offline pool fill : {:>9.2} ms (while charging — not counted online)",
        prep.client_offline.as_secs_f64() * 1e3
    );
    println!(
        "  online lookups    : {:>9.2} ms",
        prep.client_encrypt.as_secs_f64() * 1e3
    );
    println!(
        "  total online      : {:>9.2} ms",
        prep.total_online().as_secs_f64() * 1e3
    );

    let reduction =
        100.0 * (1.0 - prep.total_online().as_secs_f64() / basic.total_online().as_secs_f64());
    println!(
        "\nonline runtime reduction: {reduction:.0}% (paper §3.3 reports ≈82% on its testbed)"
    );

    assert_eq!(
        basic.result, prep.result,
        "both runs compute the same private sum"
    );
    println!("both runs computed the same private sum: {}", prep.result);
}
