//! Sublinear private lookup with PIR — SPFE's other communication regime.
//!
//! The paper's protocol sends one ciphertext per database row (linear
//! communication). When the client wants a *single* record rather than a
//! sum, the Paillier-based PIR of `pps-pir` fetches it with O(√n)
//! traffic: a patent examiner can retrieve one patent valuation from a
//! pricing bureau without revealing which patent they are examining —
//! and without downloading the whole database.
//!
//! Run with:
//! ```sh
//! cargo run --release -p pps --example private_lookup
//! ```

use pps::pir::{run_pir, PirClient, PirServer};
use pps::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(8080);

    // --- Pricing bureau: valuations for 10,000 patents. ---
    let n = 10_000;
    let valuations: Vec<u64> = (0..n).map(|_| rng.gen_range(10_000..5_000_000)).collect();
    println!("bureau database: {n} patent valuations");

    let kp = PaillierKeypair::generate(512, &mut rng).expect("keygen");

    // --- Examiner: privately fetch patent #7777. ---
    let index = 7777;
    let report = run_pir(&valuations, index, &kp, &mut rng).expect("pir run");
    println!(
        "\nprivately retrieved valuation of patent #{index}: ${}",
        report.value
    );
    assert_eq!(report.value, valuations[index]);

    println!("\ncommunication (the point of the construction):");
    println!(
        "  matrix shape        : {} × {}",
        report.shape.rows, report.shape.cols
    );
    println!(
        "  query (up)          : {:>9} B  ({} ciphertexts)",
        report.bytes_up, report.shape.rows
    );
    println!(
        "  reply (down)        : {:>9} B  ({} ciphertexts)",
        report.bytes_down, report.shape.cols
    );
    let pir_total = report.bytes_up + report.bytes_down;
    let linear = n * 128; // one 128-byte ciphertext per row
    let dump = n * 8; // raw download
    println!("  PIR total           : {pir_total:>9} B   (O(√n))");
    println!("  linear protocol     : {linear:>9} B   (O(n))");
    println!("  trivial download    : {dump:>9} B   (O(n), and leaks everything)");
    println!(
        "\ntimes: {:.1} ms client encryption, {:.1} ms server fold",
        report.encrypt_time.as_secs_f64() * 1e3,
        report.server_time.as_secs_f64() * 1e3
    );

    // Honest leakage statement: the examiner learns the whole fetched
    // matrix row (√n values), not just one item.
    let server = PirServer::new(valuations).expect("server");
    let client = PirClient::new(&kp);
    let query = client
        .query(server.shape(), index, &mut rng)
        .expect("query");
    let reply = server.answer(&query).expect("answer");
    let row = client.extract_row(&reply).expect("row");
    println!(
        "\nleakage surface: the client sees its full matrix row of {} values \
         (documented construction property)",
        row.len()
    );
}
