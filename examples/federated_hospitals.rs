//! Federated databases and bivariate statistics — the §1 extension.
//!
//! Three hospitals each hold a partition of a patient registry. A public
//! health researcher computes the combined total across all three (with
//! server-side correlated blinding, so not even per-hospital subtotals
//! leak), and then, against a single hospital, the private correlation
//! between two clinical columns over a hidden cohort.
//!
//! Run with:
//! ```sh
//! cargo run --release -p pps --example federated_hospitals
//! ```

use pps::prelude::*;
use pps::protocol::{run_multidb_blinded, Partition};
use pps::stats::{private_paired_moments, PairedDatabase};
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // --- Part 1: blinded total across three hospital partitions. ---
    println!("=== combined total across 3 hospitals (blinded partials) ===");
    let partitions: Vec<Partition> = [180usize, 240, 150]
        .iter()
        .map(|&n| Partition {
            db: Database::random(n, 500, &mut rng).expect("non-empty"),
            selection: Selection::random(n, 0.25, &mut rng).expect("valid p"),
        })
        .collect();

    let client = SumClient::generate(512, &mut rng).expect("keygen");
    let (report, total) =
        run_multidb_blinded(&partitions, &client, LinkProfile::gigabit_lan(), &mut rng)
            .expect("multi-database run");

    println!("combined cohort total : {total}");
    println!("rows across hospitals : {}", report.n);
    println!("cohort size           : {}", report.selected);
    println!(
        "each hospital blinds its reply with correlated randomness (Σ Rᵢ ≡ 0 mod M),\n\
         so the researcher never sees a per-hospital subtotal.\n"
    );

    // --- Part 2: private correlation between two columns. ---
    println!("=== private correlation: age vs blood pressure, hidden cohort ===");
    let n = 300;
    let ages: Vec<u64> = (0..n).map(|_| rng.gen_range(20..90)).collect();
    // Blood pressure loosely increases with age, plus noise.
    let pressures: Vec<u64> = ages
        .iter()
        .map(|&a| 90 + a + rng.gen_range(0..30))
        .collect();
    let paired = PairedDatabase::new(ages, pressures).expect("aligned columns");
    let cohort = Selection::random(n, 0.5, &mut rng).expect("valid p");

    let r = private_paired_moments(
        &paired,
        &cohort,
        &client,
        LinkProfile::gigabit_lan(),
        &mut rng,
    )
    .expect("paired query");

    println!("cohort size       : {}", r.count);
    println!("mean age          : {:.1}", r.sum_x as f64 / r.count as f64);
    println!("mean pressure     : {:.1}", r.sum_y as f64 / r.count as f64);
    println!("covariance        : {:.2}", r.covariance().unwrap());
    println!("Pearson r         : {:.3}", r.correlation().unwrap());
    println!(
        "\nall six aggregates came from ONE pass of {} encrypted index bits\n\
         ({} B up, {} B down) — the server folded the same ciphertexts against\n\
         six value vectors (1, x, y, x², y², xy).",
        n, r.timings.bytes_to_server, r.timings.bytes_to_client
    );

    assert!(
        r.correlation().unwrap() > 0.5,
        "age and pressure are built correlated"
    );
}
