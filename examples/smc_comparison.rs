//! Homomorphic selected sum vs. general secure computation (§2).
//!
//! The paper justifies its special-purpose protocol by the cost of
//! general SMC: a Fairplay-style garbled-circuit evaluation of the same
//! selected sum "would require an execution time of at least 15 minutes
//! for a database of only 1,000 elements" [16]. This example runs both
//! our garbled-circuit engine and the homomorphic protocol on the same
//! instances and prints the gap.
//!
//! Run with:
//! ```sh
//! cargo run --release -p pps --example smc_comparison
//! ```

use pps::gc::run_gc_selected_sum;
use pps::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1999);

    println!("selected sum: Yao garbled circuits vs Paillier homomorphic protocol");
    println!("(32-bit values; GC uses 128-bit labels, Paillier 512-bit keys)\n");
    println!(
        "{:>6} | {:>9} {:>12} {:>10} | {:>10} {:>10}",
        "n", "GC gates", "GC bytes", "GC time", "HE time", "HE bytes"
    );

    let client = SumClient::generate(512, &mut rng).expect("keygen");

    for n in [8usize, 16, 32, 64] {
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 32)).collect();
        let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();

        // General SMC (garbled circuit).
        let gc =
            run_gc_selected_sum(&values, &bits, 32, client.keypair(), &mut rng).expect("gc run");

        // Special-purpose homomorphic protocol.
        let db = Database::new(values).expect("non-empty");
        let sel = Selection::from_bits(&bits);
        let he = pps::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng)
            .expect("he run");
        assert_eq!(gc.result, he.result, "both protocols agree");

        println!(
            "{:>6} | {:>9} {:>12} {:>9.1}ms | {:>9.1}ms {:>10}",
            n,
            gc.gates,
            gc.total_bytes(),
            gc.total_time().as_secs_f64() * 1e3,
            he.total_sequential().as_secs_f64() * 1e3,
            he.bytes_to_server + he.bytes_to_client,
        );
    }

    println!("\nthe gap: GC ships four 16-byte table rows per gate (~200 gates per");
    println!("32-bit element) plus one OT per selection bit, while the homomorphic");
    println!("protocol ships one 128-byte ciphertext per element — and the GC gap");
    println!("widens with the value width. This is why the paper builds on");
    println!("homomorphic encryption rather than general SMC for large databases.");
}
