//! Offline, API-compatible subset of `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` over
//! `std::sync::mpsc`, and `crossbeam::thread::scope` over
//! `std::thread::scope`. Only the surface the workspace uses is
//! implemented; semantics (blocking recv, disconnect errors, scoped
//! join-on-exit) match the real crate.

#![forbid(unsafe_code)]

/// Multi-producer channels with blocking receive.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only when the receiver is dropped.
        ///
        /// # Errors
        /// [`SendError`] carrying the message when disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        ///
        /// # Errors
        /// [`RecvError`] when empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads that may borrow from the enclosing stack frame.
pub mod thread {
    /// Runs `f` with a scope handle; all threads spawned on the scope
    /// are joined before `scope` returns. Unlike real crossbeam this
    /// returns `Ok(..)` always (panics propagate as panics, which is
    /// how the workspace uses it).
    ///
    /// # Errors
    /// Never; the `Result` exists for crossbeam signature parity.
    #[allow(clippy::unnecessary_wraps)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn channel_round_trip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let t = std::thread::spawn(move || tx2.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
        t.join().unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h = s.spawn(|| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
