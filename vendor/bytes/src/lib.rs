//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to a cargo registry, so the
//! workspace vendors the small slice of the `bytes` API it actually
//! uses: [`Bytes`] (cheaply cloneable, sliceable immutable buffers),
//! [`BytesMut`] (growable buffer with front consumption), and the
//! [`Buf`]/[`BufMut`] cursor traits with big-endian accessors.
//!
//! Semantics match the real crate for the operations provided;
//! performance characteristics are close enough for protocol-sized
//! messages (`Bytes::clone` and `Bytes::slice` are O(1) via `Arc`;
//! `BytesMut::advance` is amortized by deferred compaction).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a `Bytes` from a static slice (copies; the real crate
    /// borrows, but no caller depends on zero-copy statics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-view of the same underlying storage (O(1)).
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// A growable byte buffer that also supports consumption from the front.
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Consumed prefix length; `buf[off..]` is the live region.
    off: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            off: 0,
        }
    }

    /// Live length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.off
    }

    /// True when no live bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends bytes to the back.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Splits off the first `at` live bytes into a new `BytesMut`,
    /// leaving the remainder in `self`.
    ///
    /// # Panics
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self.buf[self.off..self.off + at].to_vec();
        self.off += at;
        self.compact_if_stale();
        BytesMut { buf: front, off: 0 }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.off == 0 {
            Bytes::from(self.buf)
        } else {
            Bytes::from(self.buf[self.off..].to_vec())
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..]
    }

    /// Reclaims the consumed prefix once it dominates the allocation.
    fn compact_if_stale(&mut self) {
        if self.off > 4096 && self.off * 2 > self.buf.len() {
            self.buf.drain(..self.off);
            self.off = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut {
            buf: s.to_vec(),
            off: 0,
        }
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:02x?})", self.as_slice())
    }
}

/// Read cursor over a contiguous buffer, with big-endian accessors.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread region.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    /// Panics when `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics on underflow, as in the real crate.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Panics
    /// Panics on underflow.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    /// Panics on underflow.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    /// Panics on underflow.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Reads a big-endian `u128`.
    ///
    /// # Panics
    /// Panics on underflow.
    fn get_u128(&mut self) -> u128 {
        let v = u128::from_be_bytes(self.chunk()[..16].try_into().unwrap());
        self.advance(16);
        v
    }

    /// Copies `len` bytes out into an owned [`Bytes`].
    ///
    /// # Panics
    /// Panics on underflow.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let v = self.chunk()[..len].to_vec();
        self.advance(len);
        Bytes::from(v)
    }

    /// Fills `dst` from the front of the buffer.
    ///
    /// # Panics
    /// Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.off += cnt;
        self.compact_if_stale();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor with big-endian writers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_clone_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn buf_cursor_reads() {
        let mut b = Bytes::from(vec![0, 1, 0, 0, 0, 2, 9]);
        assert_eq!(b.get_u16(), 1);
        assert_eq!(b.get_u32(), 2);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 9);
        assert!(!b.has_remaining());
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u16(0xABCD);
        m.put_slice(&[1, 2, 3]);
        assert_eq!(m.len(), 5);
        let front = m.split_to(2);
        assert_eq!(&front[..], &[0xAB, 0xCD]);
        assert_eq!(m.freeze().to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn bytes_mut_advance_then_freeze() {
        let mut m = BytesMut::from(&[9u8, 8, 7, 6][..]);
        m.advance(2);
        assert_eq!(&m[..], &[7, 6]);
        assert_eq!(m.freeze().to_vec(), vec![7, 6]);
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.advance(2);
    }
}
