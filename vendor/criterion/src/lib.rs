//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of criterion its benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `Bencher::iter` / `iter_batched`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is simpler than upstream (no outlier analysis or HTML
//! reports) but real: each benchmark is calibrated so one sample takes
//! ≥1 ms, then timed over multiple samples within a wall-clock budget,
//! and the per-iteration mean, min, and max are printed. Under
//! `cargo test` (`--test` flag) every benchmark body runs exactly once
//! as a smoke test.
//!
//! Because the statistics differ from upstream criterion (no outlier
//! rejection or bootstrapped confidence intervals), numbers printed by
//! this harness are **not comparable** with results from runs that
//! used the real crate; compare only within a single harness
//! generation. See `vendor/README.md` for the full divergence list.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; measurement here does not distinguish.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing collector passed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// (total time, total iterations) accumulated by `iter*`.
    measured: Option<(Duration, u64, Duration, Duration)>,
}

impl Bencher {
    fn new(test_mode: bool, samples: usize) -> Self {
        Bencher {
            test_mode,
            samples,
            measured: None,
        }
    }

    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            let t = Instant::now();
            black_box(f());
            let el = t.elapsed();
            self.measured = Some((el, 1, el, el));
            return;
        }
        // Calibrate: grow the inner batch until one sample is >= 1 ms,
        // so per-sample timer overhead is negligible for fast bodies.
        let mut batch: u64 = 1;
        let mut first_sample;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            first_sample = t.elapsed();
            if first_sample >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let budget = Duration::from_millis(500);
        let mut total = first_sample;
        let mut iters = batch;
        let mut min = per_iter(first_sample, batch);
        let mut max = min;
        let mut taken = 1usize;
        while taken < self.samples && total < budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            let per = per_iter(el, batch);
            min = min.min(per);
            max = max.max(per);
            total += el;
            iters += batch;
            taken += 1;
        }
        self.measured = Some((total, iters, min, max));
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let el = t.elapsed();
            self.measured = Some((el, 1, el, el));
            return;
        }
        let budget = Duration::from_millis(500);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        while (iters as usize) < self.samples.max(3) && total < budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            let el = t.elapsed();
            min = min.min(el);
            max = max.max(el);
            total += el;
            iters += 1;
        }
        self.measured = Some((total, iters.max(1), min, max));
    }
}

fn per_iter(total: Duration, iters: u64) -> Duration {
    if iters == 0 {
        Duration::ZERO
    } else {
        total / u32::try_from(iters.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher::new(self.criterion.test_mode, self.sample_size);
        f(&mut b);
        self.criterion.report(&full, &b);
        self
    }

    /// Runs one benchmark closure with an auxiliary input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher::new(self.criterion.test_mode, self.sample_size);
        f(&mut b, input);
        self.criterion.report(&full, &b);
        self
    }

    /// Ends the group (upstream parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Benchmark driver: owns CLI configuration and reporting.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    ran: usize,
}

impl Criterion {
    /// Builds a driver from the process arguments (as cargo passes
    /// them: an optional name filter, `--test` under `cargo test`,
    /// `--bench` under `cargo bench`).
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            let mut b = Bencher::new(self.test_mode, 20);
            f(&mut b);
            self.report(id, &b);
        }
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }

    fn report(&mut self, full_id: &str, b: &Bencher) {
        self.ran += 1;
        match b.measured {
            Some((total, iters, min, max)) => {
                let mean = per_iter(total, iters);
                if self.test_mode {
                    println!("test {full_id} ... ok");
                } else {
                    println!(
                        "{:<52} time: [{} {} {}]  ({} iters)",
                        full_id,
                        fmt_duration(min),
                        fmt_duration(mean),
                        fmt_duration(max),
                        iters
                    );
                }
            }
            None => println!("{full_id:<52} (no measurement recorded)"),
        }
    }

    /// Prints the end-of-run summary line.
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("{} benchmark smoke tests ran", self.ran);
        } else {
            println!("{} benchmarks measured", self.ran);
        }
    }
}

/// Collects benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_records() {
        let mut b = Bencher::new(false, 3);
        b.iter(|| 1 + 1);
        let (total, iters, ..) = b.measured.unwrap();
        assert!(iters >= 1);
        assert!(total > Duration::ZERO);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher::new(true, 50);
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(true, 10);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.measured.is_some());
    }

    #[test]
    fn filter_matches_substring() {
        let c = Criterion {
            filter: Some("fold".into()),
            test_mode: false,
            ran: 0,
        };
        assert!(c.matches("ablation_server_fold/100000"));
        assert!(!c.matches("paillier/encrypt"));
    }
}
