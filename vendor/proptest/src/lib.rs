//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro with
//! `#![proptest_config(..)]`, `pat in strategy` arguments,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`]/
//! [`prop_assume!`], `any::<T>()`, integer-range strategies, tuple
//! strategies, `prop::collection::vec`, and `.prop_map(..)`.
//!
//! Differences from upstream, deliberate for this environment:
//! - No shrinking: a failing case reports its deterministic case seed
//!   instead of a minimised input. Cases are reproducible because each
//!   (test name, case index) pair maps to a fixed RNG seed.
//! - Rejection via [`prop_assume!`] skips the case; a test aborts if
//!   rejects vastly outnumber the requested cases.

#![forbid(unsafe_code)]

pub use config::ProptestConfig;

/// Run-time configuration for a [`proptest!`] block.
pub mod config {
    /// Configuration: currently just the number of passing cases
    /// required per property.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config requiring `cases` passing cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Deterministic case driver used by the [`proptest!`] expansion.
pub mod test_runner {
    use crate::config::ProptestConfig;

    /// RNG handed to strategies; deterministic per (test, case).
    pub type TestRng = rand::rngs::StdRng;

    /// Outcome of a single property case other than success.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure with a rendered message.
        Fail(String),
        /// Input rejected by `prop_assume!`; retry with a new case.
        Reject,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Runs cases until the configured number pass, panicking on the
    /// first failure with the case index for reproduction.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
        seed: u64,
    }

    impl TestRunner {
        /// Creates a runner for the named property.
        #[must_use]
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            // FNV-1a over the fully qualified test name: stable across
            // runs and processes, unique per property.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, name, seed }
        }

        /// Drives the property closure. Panics on failure or when
        /// rejects exceed a generous multiple of the case budget.
        pub fn run<F>(&mut self, f: &mut F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            use rand::SeedableRng;
            let want = self.config.cases;
            let max_rejects = u64::from(want) * 64 + 1024;
            let mut passed = 0u32;
            let mut rejects = 0u64;
            let mut case: u64 = 0;
            while passed < want {
                let case_seed = self
                    .seed
                    .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = TestRng::seed_from_u64(case_seed);
                match f(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects <= max_rejects,
                            "{}: too many prop_assume! rejections ({} rejects for {} cases)",
                            self.name,
                            rejects,
                            want
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "{} failed at case #{} (seed {:#018x}):\n{}",
                            self.name, case, case_seed, msg
                        );
                    }
                }
                case += 1;
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// RNG type threaded through generation.
    pub type TestRng = rand::rngs::StdRng;

    /// A recipe for producing values of `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }

            impl Strategy for RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! impl_tuple_strategies {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategies!(A.0);
    impl_tuple_strategies!(A.0, B.1);
    impl_tuple_strategies!(A.0, B.1, C.2);
    impl_tuple_strategies!(A.0, B.1, C.2, D.3);
    impl_tuple_strategies!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategies!(A.0, B.1, C.2, D.3, E.4, F.5);
}

/// `any::<T>()`: uniform over the type's whole domain.
pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: rand::StandardSample> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::standard_sample(rng)
        }
    }

    /// Uniform strategy over all of `T` (bool and the integer types).
    #[must_use]
    pub fn any<T: rand::StandardSample>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec()`].
    pub trait IntoSizeRange {
        /// Inclusive (min, max) length bounds.
        fn into_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn into_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "vec strategy: empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "vec strategy: empty size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with length in the given bounds.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                rand::Rng::gen_range(rng, self.min..=self.max)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of values from `elem` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.into_bounds();
        VecStrategy { elem, min, max }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves as it does
/// with the real crate.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs, in one import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `fn name(pat in strategy, ..) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::test_runner::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                runner.run(&mut |__pps_proptest_rng: &mut $crate::test_runner::TestRng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), __pps_proptest_rng);
                    )*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Rejects the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} ({}:{})",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({}:{})", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pps_l, __pps_r) => {
                if !(*__pps_l == *__pps_r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right` ({}:{})\n  left: {:?}\n right: {:?}",
                            file!(),
                            line!(),
                            __pps_l,
                            __pps_r
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pps_l, __pps_r) => {
                if *__pps_l == *__pps_r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left != right` ({}:{})\n  both: {:?}",
                            file!(),
                            line!(),
                            __pps_l
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity(x: u64) -> bool {
        x.is_multiple_of(2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 5u64..10, b in 0usize..=3, c in 1u32..) {
            prop_assert!((5..10).contains(&a));
            prop_assert!(b <= 3);
            prop_assert!(c >= 1);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn exact_vec_length(v in prop::collection::vec(any::<bool>(), 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn prop_map_applies(even in any::<u64>().prop_map(|x| x & !1)) {
            prop_assert!(parity(even));
        }

        #[test]
        fn tuples_and_assume(pair in (any::<u8>(), 1u8..=16)) {
            prop_assume!(pair.0 > 0);
            prop_assert_ne!(pair.0, 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = crate::collection::vec(crate::arbitrary::any::<u64>(), 3..9);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(99);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(99);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
