//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no registry access, so the workspace
//! vendors the API slice it uses: [`RngCore`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`from_seed`, `seed_from_u64`, `from_entropy`) and
//! [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a
//! high-quality non-cryptographic generator. It is deterministic per
//! seed (everything the workspace's seeded tests need) but its stream
//! differs from upstream rand's ChaCha12-based `StdRng`; no test in
//! this workspace depends on the exact upstream stream. Cryptographic
//! randomness in the protocol comes from the primes and blinding drawn
//! through these interfaces in *deployments*, where callers should
//! seed via [`SeedableRng::from_entropy`] (backed by the OS entropy
//! pool).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (always infallible here).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible fill; infallible for every generator here.
    ///
    /// # Errors
    /// Never, in this vendored subset.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`] (rand's `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform range sampler. The blanket [`SampleRange`]
/// impls below are generic over this trait so that integer-literal
/// inference unifies the range's element type with `gen_range`'s
/// return type, as with the real crate.
pub trait SampleUniform: StandardSample + Copy + PartialOrd {
    /// Uniform draw from `[start, end)`; `start < end`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `[start, end]`; `start <= end`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// The type's maximum value (for `RangeFrom` sampling).
    fn max_value() -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                // Distance through the unsigned counterpart is exact
                // for signed types too.
                let span = end.wrapping_sub(start) as $u as u128;
                let v = uniform_u128_below(rng, span);
                start.wrapping_add(v as $t)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
            ) -> Self {
                let dist = end.wrapping_sub(start) as $u as u128;
                if dist == u128::MAX {
                    // Full 128-bit domain; only reachable for $t = u128/i128.
                    return <$t as StandardSample>::standard_sample(rng);
                }
                let v = uniform_u128_below(rng, dist + 1);
                start.wrapping_add(v as $t)
            }

            fn max_value() -> Self {
                <$t>::MAX
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_range_inclusive(rng, start, end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeFrom<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, self.start, T::max_value())
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, bound)` by rejection sampling (`bound > 0`).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    // Zone is the largest multiple of `bound` that fits in u128.
    let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
    loop {
        let v = u128::standard_sample(rng);
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value over the type's whole domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::standard_sample(self) < p
    }

    /// Fills a slice with random data (alias for `fill_bytes` on byte
    /// slices; provided for rand parity).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds a generator seeded from the OS entropy pool
    /// (`/dev/urandom`), falling back to clock entropy.
    fn from_entropy() -> Self {
        let mut seed = Self::Seed::default();
        if fill_from_urandom(seed.as_mut()).is_err() {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let pid = std::process::id() as u64;
            return Self::seed_from_u64(nanos ^ (pid << 32) ^ 0xA076_1D64_78BD_642F);
        }
        Self::from_seed(seed)
    }
}

fn fill_from_urandom(dest: &mut [u8]) -> std::io::Result<()> {
    use std::io::Read;
    let mut f = std::fs::File::open("/dev/urandom")?;
    f.read_exact(dest)
}

/// Provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic per seed; statistically strong, not a CSPRNG (see
    /// the crate docs for the deployment caveat).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Draws one value of `T` from a fresh entropy-seeded generator.
pub fn random<T: StandardSample>() -> T {
    let mut rng = <rngs::StdRng as SeedableRng>::from_entropy();
    T::standard_sample(&mut rng)
}

/// A fresh entropy-seeded generator (rand's `thread_rng` without the
/// thread-local cache; adequate for the workspace's CLI entry points).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(2);
        // Must not loop forever or panic.
        let _: u64 = rng.gen_range(1u64..=u64::MAX);
        let _: u128 = rng.gen_range(0u128..=u128::MAX);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn gen_produces_varied_types() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: bool = rng.gen();
        let _: u128 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let mut buf = [0u8; 4];
        dyn_rng.fill_bytes(&mut buf);
        assert!(dyn_rng.try_fill_bytes(&mut buf).is_ok());
    }
}
