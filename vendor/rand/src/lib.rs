//! Offline, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no registry access, so the workspace
//! vendors the API slice it uses: [`RngCore`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`from_seed`, `seed_from_u64`, `from_entropy`) and
//! [`rngs::StdRng`].
//!
//! `StdRng` here is ChaCha12 — the same cipher family and round count
//! upstream rand 0.8's `StdRng` uses — so it is a cryptographically
//! secure generator suitable for the workspace's real deployment paths
//! (Paillier prime generation, encryption randomizers, blinding). It
//! is deterministic per seed (everything the workspace's seeded tests
//! need), though the exact output stream differs from upstream's
//! `rand_chacha` block/word ordering; no test in this workspace
//! depends on the upstream stream. [`SeedableRng::from_entropy`] reads
//! the OS entropy pool and **panics** when it is unavailable rather
//! than silently degrading to a guessable seed.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (always infallible here).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible fill; infallible for every generator here.
    ///
    /// # Errors
    /// Never, in this vendored subset.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`] (rand's `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform range sampler. The blanket [`SampleRange`]
/// impls below are generic over this trait so that integer-literal
/// inference unifies the range's element type with `gen_range`'s
/// return type, as with the real crate.
pub trait SampleUniform: StandardSample + Copy + PartialOrd {
    /// Uniform draw from `[start, end)`; `start < end`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `[start, end]`; `start <= end`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// The type's maximum value (for `RangeFrom` sampling).
    fn max_value() -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                // Distance through the unsigned counterpart is exact
                // for signed types too.
                let span = end.wrapping_sub(start) as $u as u128;
                let v = uniform_u128_below(rng, span);
                start.wrapping_add(v as $t)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
            ) -> Self {
                let dist = end.wrapping_sub(start) as $u as u128;
                if dist == u128::MAX {
                    // Full 128-bit domain; only reachable for $t = u128/i128.
                    return <$t as StandardSample>::standard_sample(rng);
                }
                let v = uniform_u128_below(rng, dist + 1);
                start.wrapping_add(v as $t)
            }

            fn max_value() -> Self {
                <$t>::MAX
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_range_inclusive(rng, start, end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeFrom<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, self.start, T::max_value())
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, bound)` by rejection sampling (`bound > 0`).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    // Zone is the largest multiple of `bound` that fits in u128.
    let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
    loop {
        let v = u128::standard_sample(rng);
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value over the type's whole domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::standard_sample(self) < p
    }

    /// Fills a slice with random data (alias for `fill_bytes` on byte
    /// slices; provided for rand parity).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Marker trait for cryptographically secure generators, as in the
/// real crate. Only implement for generators whose output is
/// computationally indistinguishable from uniform even to an adversary
/// observing arbitrarily many prior outputs.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds a generator seeded from the OS entropy pool
    /// (`/dev/urandom`).
    ///
    /// # Panics
    /// When OS entropy is unavailable. Keys, encryption randomizers and
    /// blinding values are drawn through generators seeded here, so a
    /// silent fallback to guessable entropy (clock, pid) would be a
    /// security hole; failing loudly matches upstream `from_entropy`,
    /// which also panics when the OS entropy source errors.
    fn from_entropy() -> Self {
        let mut seed = Self::Seed::default();
        fill_from_os_entropy(seed.as_mut()).unwrap_or_else(|e| {
            panic!(
                "from_entropy: OS entropy pool unavailable ({e}); \
                 refusing to fall back to a guessable seed"
            )
        });
        Self::from_seed(seed)
    }
}

/// Fills `dest` from the OS entropy pool. `/dev/urandom` is the
/// portable-enough source for this workspace's supported targets
/// (Linux/Unix); platforms without it get an error, which
/// [`SeedableRng::from_entropy`] turns into a panic — never a silent
/// downgrade.
fn fill_from_os_entropy(dest: &mut [u8]) -> std::io::Result<()> {
    use std::io::Read;
    let mut f = std::fs::File::open("/dev/urandom")?;
    f.read_exact(dest)
}

/// Provided generators.
pub mod rngs {
    use super::{CryptoRng, RngCore, SeedableRng};

    /// ChaCha quarter round.
    #[inline]
    fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// One 64-byte ChaCha12 keystream block for `(key, counter)`, with
    /// a zero nonce (each generator instance is single-stream; the
    /// 64-bit block counter gives 2^70 bytes per seed, never exhausted
    /// in practice).
    fn chacha12_block(key: &[u32; 8], counter: u64) -> [u8; 64] {
        // "expand 32-byte k" constants, key, 64-bit counter, 64-bit nonce.
        let mut s = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let init = s;
        for _ in 0..6 {
            // Double round: 4 column rounds then 4 diagonal rounds.
            qr(&mut s, 0, 4, 8, 12);
            qr(&mut s, 1, 5, 9, 13);
            qr(&mut s, 2, 6, 10, 14);
            qr(&mut s, 3, 7, 11, 15);
            qr(&mut s, 0, 5, 10, 15);
            qr(&mut s, 1, 6, 11, 12);
            qr(&mut s, 2, 7, 8, 13);
            qr(&mut s, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for (i, (word, start)) in s.iter().zip(init).enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.wrapping_add(start).to_le_bytes());
        }
        out
    }

    /// The workspace's standard generator: ChaCha12, the cipher behind
    /// upstream rand 0.8's `StdRng`.
    ///
    /// Deterministic per seed and cryptographically secure; the seed is
    /// the ChaCha key and output is the keystream, so recovering the
    /// state from outputs is as hard as breaking ChaCha12.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u8; 64],
        pos: usize,
    }

    impl StdRng {
        /// Copies the next `dest.len()` keystream bytes, generating
        /// blocks as the buffer drains.
        fn take(&mut self, dest: &mut [u8]) {
            let mut filled = 0;
            while filled < dest.len() {
                if self.pos == self.buf.len() {
                    self.buf = chacha12_block(&self.key, self.counter);
                    self.counter = self.counter.wrapping_add(1);
                    self.pos = 0;
                }
                let n = (self.buf.len() - self.pos).min(dest.len() - filled);
                dest[filled..filled + n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
                self.pos += n;
                filled += n;
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            let mut b = [0u8; 4];
            self.take(&mut b);
            u32::from_le_bytes(b)
        }

        fn next_u64(&mut self) -> u64 {
            let mut b = [0u8; 8];
            self.take(&mut b);
            u64::from_le_bytes(b)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.take(dest);
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, word) in key.iter_mut().enumerate() {
                *word = u32::from_le_bytes(seed[i * 4..(i + 1) * 4].try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; 64],
                pos: 64, // empty; first draw generates block 0
            }
        }
    }

    impl CryptoRng for StdRng {}
}

/// Draws one value of `T` from a fresh entropy-seeded generator.
pub fn random<T: StandardSample>() -> T {
    let mut rng = <rngs::StdRng as SeedableRng>::from_entropy();
    T::standard_sample(&mut rng)
}

/// A fresh entropy-seeded generator (rand's `thread_rng` without the
/// thread-local cache; adequate for the workspace's CLI entry points).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(2);
        // Must not loop forever or panic.
        let _: u64 = rng.gen_range(1u64..=u64::MAX);
        let _: u128 = rng.gen_range(0u128..=u128::MAX);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn gen_produces_varied_types() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: bool = rng.gen();
        let _: u128 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn chacha12_known_answer() {
        // ECRYPT/djb test vector: ChaCha12, 256-bit all-zero key,
        // all-zero IV, first keystream bytes.
        let mut rng = StdRng::from_seed([0u8; 32]);
        let mut out = [0u8; 32];
        rng.fill_bytes(&mut out);
        let expected: [u8; 32] = [
            0x9b, 0xf4, 0x9a, 0x6a, 0x07, 0x55, 0xf9, 0x53, 0x81, 0x1f, 0xce, 0x12, 0x5f, 0x26,
            0x83, 0xd5, 0x04, 0x29, 0xc3, 0xbb, 0x49, 0xe0, 0x74, 0x14, 0x7e, 0x00, 0x89, 0xa5,
            0x2e, 0xae, 0x15, 0x5f,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn word_draws_match_byte_stream() {
        // next_u32/next_u64 must consume the same keystream bytes that
        // fill_bytes would, in order.
        let mut a = StdRng::seed_from_u64(9);
        let mut bytes = [0u8; 12];
        StdRng::seed_from_u64(9).fill_bytes(&mut bytes);
        assert_eq!(
            a.next_u64(),
            u64::from_le_bytes(bytes[..8].try_into().unwrap())
        );
        assert_eq!(
            a.next_u32(),
            u32::from_le_bytes(bytes[8..].try_into().unwrap())
        );
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let mut buf = [0u8; 4];
        dyn_rng.fill_bytes(&mut buf);
        assert!(dyn_rng.try_fill_bytes(&mut buf).is_ok());
    }
}
