//! End-to-end integration: every protocol variant against the plaintext
//! oracle, over both the virtual-clock driver and real concurrent
//! threads, at the paper's 512-bit key size.

use pps::prelude::*;
use pps::transport::LinkProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(n: usize, seed: u64, key_bits: usize) -> (Database, Selection, SumClient, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = Database::random_32bit(n, &mut rng).expect("n > 0");
    let sel = Selection::random(n, 0.5, &mut rng).expect("valid p");
    let client = SumClient::generate(key_bits, &mut rng).expect("keygen");
    (db, sel, client, rng)
}

#[test]
fn paper_key_size_basic_run() {
    // The paper's exact configuration: 512-bit keys, 32-bit values.
    let (db, sel, client, mut rng) = setup(300, 1, 512);
    let r = pps::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(r.result, db.oracle_sum(&sel).unwrap());
    assert_eq!(r.key_bits, 512);
    // One 128-byte ciphertext per element upstream (plus hello/framing).
    assert!(r.bytes_to_server >= 300 * 128);
    assert!(r.bytes_to_server < 300 * 128 + 1200);
}

#[test]
fn all_variants_agree_on_one_workload() {
    let (db, sel, client, mut rng) = setup(240, 2, 256);
    let link = LinkProfile::gigabit_lan;
    let expected = db.oracle_sum(&sel).unwrap();

    let basic = pps::run_basic(&db, &sel, &client, link(), &mut rng).unwrap();
    let batched = pps::run_batched(&db, &sel, &client, link(), 50, &mut rng).unwrap();
    let prep = pps::run_preprocessed(&db, &sel, &client, link(), &mut rng).unwrap();
    let combined = pps::run_combined(&db, &sel, &client, link(), 50, &mut rng).unwrap();
    let plain = pps::run_plain_baseline(&db, &sel, link()).unwrap();
    let download = pps::run_download_baseline(&db, &sel, link()).unwrap();

    for (name, r) in [
        ("basic", &basic),
        ("batched", &batched),
        ("preprocessed", &prep),
        ("combined", &combined),
        ("plain", &plain),
        ("download", &download),
    ] {
        assert_eq!(r.result, expected, "{name} disagrees with the oracle");
        assert_eq!(r.n, 240, "{name} row count");
    }

    // Same encrypted-index traffic for all private single-client variants
    // (framing differs across batch counts, ciphertext payload does not).
    let w = client.keypair().public.ciphertext_bytes();
    for r in [&basic, &batched, &prep, &combined] {
        assert!(r.bytes_to_server >= 240 * w);
    }
}

#[test]
fn threaded_driver_matches_virtual_driver() {
    let (db, sel, client, mut rng) = setup(150, 3, 256);
    let threaded = pps::run_threaded(&db, &sel, &client, 32, &mut rng).unwrap();
    let virtual_run =
        pps::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(threaded, virtual_run.result);
}

#[test]
fn batch_size_does_not_change_result() {
    let (db, sel, client, mut rng) = setup(97, 4, 256);
    let expected = db.oracle_sum(&sel).unwrap();
    for batch in [1usize, 2, 7, 50, 96, 97, 1000] {
        let r = pps::run_batched(
            &db,
            &sel,
            &client,
            LinkProfile::gigabit_lan(),
            batch,
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.result, expected, "batch={batch}");
    }
}

#[test]
fn extreme_selections() {
    let (db, _, client, mut rng) = setup(80, 5, 256);
    let none = Selection::from_bits(&[false; 80]);
    let all = Selection::from_bits(&[true; 80]);
    let r0 = pps::run_basic(&db, &none, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(r0.result, 0);
    let r1 = pps::run_basic(&db, &all, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(
        r1.result,
        db.values().iter().map(|&v| v as u128).sum::<u128>()
    );
}

#[test]
fn single_element_database() {
    let mut rng = StdRng::seed_from_u64(6);
    let db = Database::new(vec![777]).unwrap();
    let client = SumClient::generate(128, &mut rng).unwrap();
    let yes = Selection::from_bits(&[true]);
    let no = Selection::from_bits(&[false]);
    let ry = pps::run_basic(&db, &yes, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(ry.result, 777);
    let rn = pps::run_basic(&db, &no, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(rn.result, 0);
}

#[test]
fn weighted_queries_end_to_end() {
    let mut rng = StdRng::seed_from_u64(7);
    let db = Database::new(vec![100, 200, 300, 400]).unwrap();
    let client = SumClient::generate(256, &mut rng).unwrap();
    let weights = Selection::weighted(vec![3, 0, 1, 10]);
    let r =
        pps::run_weighted(&db, &weights, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(r.result, 300 + 300 + 4000);
}

#[test]
fn comm_component_tracks_link_profile() {
    let (db, sel, client, mut rng) = setup(64, 8, 256);
    let lan = pps::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    let switch =
        pps::run_basic(&db, &sel, &client, LinkProfile::cluster_switch(), &mut rng).unwrap();
    let modem = pps::run_basic(&db, &sel, &client, LinkProfile::modem_56k(), &mut rng).unwrap();
    assert!(switch.comm < lan.comm);
    assert!(lan.comm < modem.comm);
    // Identical payloads regardless of the link.
    assert_eq!(lan.bytes_to_server, modem.bytes_to_server);
}

#[test]
fn key_size_sweep() {
    // The protocol works across key sizes; ciphertext width scales.
    let mut rng = StdRng::seed_from_u64(9);
    let db = Database::new(vec![5, 10, 15]).unwrap();
    let sel = Selection::from_bits(&[true, false, true]);
    let mut widths = Vec::new();
    for bits in [128usize, 256, 512, 1024] {
        let client = SumClient::generate(bits, &mut rng).unwrap();
        let r = pps::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.result, 20, "bits={bits}");
        widths.push(r.bytes_to_server);
    }
    assert!(
        widths.windows(2).all(|w| w[0] < w[1]),
        "traffic grows with key size"
    );
}
