//! Fault-tolerance over real sockets: slow-loris eviction, stream
//! desync, and whole-query retry across injected connect refusals and
//! mid-query disconnects. These are the acceptance tests for the
//! hardened runtime — a wedged or malicious peer must cost the server
//! one bounded thread, never the service, and a client must survive the
//! failures a real deployment throws at it.

use std::io::Write as IoWrite;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pps_protocol::messages::{HelloAck, MsgType};
use pps_protocol::{
    run_tcp_query_with_retry, Database, FoldStrategy, ServerSession, SessionEvent, SessionLimits,
    SumClient, TcpQueryConfig, TcpServer,
};
use pps_transport::{RetryPolicy, TcpWire, Wire, FRAME_MAGIC};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn db4() -> Arc<Database> {
    Arc::new(Database::new(vec![10, 20, 30, 40]).unwrap())
}

/// Runs one healthy query and returns the sum.
fn healthy_query(addr: SocketAddr, select: &[usize], seed: u64) -> u128 {
    let mut rng = StdRng::seed_from_u64(seed);
    let client = SumClient::generate(128, &mut rng).unwrap();
    let out = run_tcp_query_with_retry(
        &addr.to_string(),
        &client,
        select,
        &TcpQueryConfig::default(),
        &mut rng,
    )
    .unwrap();
    out.sum
}

/// Grabs an ephemeral port that is (momentarily) free.
fn free_addr() -> SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap();
    drop(l);
    addr
}

#[test]
fn slow_loris_is_evicted_while_healthy_client_is_served() {
    // A staller opens a session, sends a syntactically valid frame
    // header, then trickles one payload byte every 30 ms — fast enough
    // to defeat any per-read timeout, so only the whole-session
    // deadline can evict it. Meanwhile a healthy client on a second
    // connection must complete unharmed.
    let server = TcpServer::bind(db4(), "127.0.0.1:0", FoldStrategy::Incremental)
        .unwrap()
        .with_limits(SessionLimits {
            read_timeout: Some(Duration::from_millis(250)),
            write_timeout: Some(Duration::from_secs(2)),
            session_deadline: Some(Duration::from_millis(400)),
        });
    let addr = server.local_addr().unwrap();

    let staller = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_nodelay(true).unwrap();
        // Frame header: magic, type 1 (hello), 64-byte payload to come.
        let mut header = FRAME_MAGIC.to_be_bytes().to_vec();
        header.push(1);
        header.extend_from_slice(&64u32.to_be_bytes());
        s.write_all(&header).unwrap();
        // Trickle; the server's eviction eventually turns writes into
        // errors. Cap the loop so a regression cannot hang the test.
        let start = Instant::now();
        for _ in 0..200 {
            std::thread::sleep(Duration::from_millis(30));
            if s.write_all(&[0]).is_err() {
                break;
            }
        }
        start.elapsed()
    });
    // Let the staller be accepted first, then run a healthy query.
    std::thread::sleep(Duration::from_millis(50));
    let healthy = std::thread::spawn(move || healthy_query(addr, &[1, 3], 9));

    let evictions = Mutex::new(Vec::new());
    let start = Instant::now();
    let stats = server.serve_with(Some(2), &|event| {
        if let SessionEvent::Evicted { error, .. } = event {
            evictions.lock().unwrap().push(error.to_string());
        }
    });
    let served_in = start.elapsed();

    assert_eq!(healthy.join().unwrap(), 60, "healthy client unharmed");
    assert_eq!(stats.sessions, 1, "only the healthy session completed");
    assert_eq!(stats.evicted, 1, "the staller was evicted");
    assert_eq!(stats.failed, 0, "eviction is not a protocol failure");
    let evictions = evictions.into_inner().unwrap();
    assert!(
        evictions.iter().any(|m| m.contains("timed out")),
        "eviction surfaced as a timeout: {evictions:?}"
    );
    assert!(
        served_in < Duration::from_secs(5),
        "eviction is prompt, not tied to the staller's patience ({served_in:?})"
    );
    // The staller's own thread observed the hangup and exited.
    let stalled_for = staller.join().unwrap();
    assert!(stalled_for < Duration::from_secs(7), "{stalled_for:?}");
}

#[test]
fn desync_over_tcp_fails_cleanly_and_server_keeps_going() {
    // Garbage where a frame header should be: the session must die with
    // a surfaced error (not a hang, not a misparse), the stats must
    // count it, and the next connection must be served normally.
    let server = TcpServer::bind(db4(), "127.0.0.1:0", FoldStrategy::Incremental).unwrap();
    let addr = server.local_addr().unwrap();

    let vandal = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x00, 0x01])
            .unwrap();
        // Wait for the server to hang up on us.
        let _ = std::io::Read::read(&mut s, &mut [0u8; 16]);
    });
    std::thread::sleep(Duration::from_millis(50));
    let healthy = std::thread::spawn(move || healthy_query(addr, &[0, 1], 13));

    let failures = Mutex::new(Vec::new());
    let stats = server.serve_with(Some(2), &|event| {
        if let SessionEvent::Failed { error, .. } = event {
            failures.lock().unwrap().push(error.to_string());
        }
    });
    vandal.join().unwrap();

    assert_eq!(healthy.join().unwrap(), 30, "later session served normally");
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.failed, 1, "desync killed exactly one session");
    let failures = failures.into_inner().unwrap();
    assert!(
        failures.iter().any(|m| m.contains("malformed")),
        "desync surfaced as malformed framing: {failures:?}"
    );
}

/// A test clock that never burns wall time on backoff: each sleep is
/// recorded instead of slept, and the *first* sleep doubles as a
/// synchronization gate — it signals the server thread to bind and
/// blocks until the listener is up. The first connect is therefore
/// refused deterministically (nothing is bound until after it fails)
/// and the retry succeeds deterministically, with no timing window on
/// either side.
#[derive(Debug)]
struct GateClock {
    go: std::sync::mpsc::Sender<()>,
    ready: Mutex<Option<std::sync::mpsc::Receiver<()>>>,
    slept: Mutex<Vec<Duration>>,
}

impl pps_obs::Clock for GateClock {
    fn now(&self) -> std::time::Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        self.slept.lock().unwrap().push(d);
        let _ = self.go.send(());
        if let Some(rx) = self.ready.lock().unwrap().take() {
            let _ = rx.recv();
        }
    }
}

#[test]
fn retry_recovers_from_first_connect_refusal_with_deterministic_backoff() {
    // Nothing listens on the target port until the client's first
    // backoff sleep fires, so attempt 1 is always refused at connect.
    // The retry loop backs off (deterministically, given the seeded
    // RNG, and without real sleeps — the injected clock records the
    // delays instead) and succeeds once the server appears.
    let addr = free_addr();
    let (go_tx, go_rx) = std::sync::mpsc::channel();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let clock = Arc::new(GateClock {
        go: go_tx,
        ready: Mutex::new(Some(ready_rx)),
        slept: Mutex::new(Vec::new()),
    });

    let server_thread = std::thread::spawn(move || {
        // Bind only once the first attempt has failed (its backoff
        // sleep signals `go`), then release the client.
        go_rx.recv().unwrap();
        let server = TcpServer::bind(db4(), &addr.to_string(), FoldStrategy::Incremental).unwrap();
        ready_tx.send(()).unwrap();
        server.serve(Some(1))
    });

    let policy = RetryPolicy {
        max_attempts: 6,
        base_delay: Duration::from_millis(150),
        max_delay: Duration::from_secs(1),
    };
    let mut rng = StdRng::seed_from_u64(11);
    let client = SumClient::generate(128, &mut rng).unwrap();
    // A refused connect consumes no randomness, so the first backoff is
    // exactly what the policy derives from this RNG state.
    let expected_first = policy.delay_for(0, &mut rng.clone());

    let config = TcpQueryConfig {
        retry: policy.clone(),
        clock: Arc::clone(&clock) as _,
        ..TcpQueryConfig::default()
    };
    let out =
        run_tcp_query_with_retry(&addr.to_string(), &client, &[0, 2], &config, &mut rng).unwrap();

    assert_eq!(out.sum, 40);
    assert!(out.retry.attempts >= 2, "first attempt must have failed");
    assert_eq!(out.retry.delays[0], expected_first, "backoff is seeded");
    for (k, d) in out.retry.delays.iter().enumerate() {
        let full = policy
            .base_delay
            .saturating_mul(1 << k)
            .min(policy.max_delay);
        assert!(
            *d <= full && *d >= full / 2,
            "delay {k} = {d:?} outside [{:?}, {full:?}]",
            full / 2
        );
    }
    assert_eq!(
        *clock.slept.lock().unwrap(),
        out.retry.delays,
        "every reported delay went through the injected clock (and \
         therefore cost the test no wall time)"
    );
    let stats = server_thread.join().unwrap();
    assert_eq!(stats.sessions, 1);
}

#[test]
fn retry_recovers_from_mid_query_disconnect() {
    // A flaky server accepts the first connection, reads one frame, and
    // hangs up mid-query; it serves the second connection properly. The
    // client's whole-query retry makes this invisible apart from the
    // attempt count.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let db = db4();

    let server_thread = std::thread::spawn(move || {
        // Connection 1: accept, read one frame, vanish.
        let (stream, _) = listener.accept().unwrap();
        let mut wire = TcpWire::new(stream);
        let _ = wire.recv();
        drop(wire);
        // Connection 2: drive a full protocol session, speaking the
        // resumable dialect's one addition — every Hello is answered
        // with a HelloAck before anything else.
        let (stream, _) = listener.accept().unwrap();
        let mut wire = TcpWire::new(stream);
        let mut session = ServerSession::new(&db);
        while !session.is_done() {
            let frame = wire.recv().unwrap();
            let is_hello = frame.msg_type == MsgType::Hello as u8;
            let reply = session.on_frame(&frame).unwrap();
            if is_hello {
                wire.send(HelloAck { session_id: 7 }.encode().unwrap())
                    .unwrap();
            }
            if let Some(reply) = reply {
                wire.send(reply).unwrap();
            }
        }
    });

    let config = TcpQueryConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
        },
        ..TcpQueryConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(12);
    let client = SumClient::generate(128, &mut rng).unwrap();
    let out =
        run_tcp_query_with_retry(&addr.to_string(), &client, &[1, 2], &config, &mut rng).unwrap();

    assert_eq!(out.sum, 50);
    assert_eq!(out.retry.attempts, 2, "one disconnect, one success");
    assert_eq!(out.retry.delays.len(), 1);
    server_thread.join().unwrap();
}

#[test]
fn queued_admission_under_load_serves_every_client() {
    // Eight clients against a two-slot server: nobody is turned away in
    // Queue mode, everybody gets the right answer, and the concurrency
    // cap shows up as zero refusals.
    use pps_protocol::Admission;
    let server = TcpServer::bind(db4(), "127.0.0.1:0", FoldStrategy::Incremental)
        .unwrap()
        .with_admission(2, Admission::Queue);
    let addr = server.local_addr().unwrap();

    let clients = std::thread::spawn(move || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| scope.spawn(move || healthy_query(addr, &[0, 3], 40 + i)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
    });

    let stats = server.serve(Some(8));
    let sums = clients.join().unwrap();
    assert_eq!(sums, vec![50u128; 8]);
    assert_eq!(stats.sessions, 8);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.refused, 0);
}

#[test]
fn graceful_shutdown_drains_and_reports() {
    // An unbounded CLI server with a shutdown timer: it must serve the
    // query issued before the timer fires, then return on its own.
    use pps_cli::{run_server, ServeOptions};
    let addr = free_addr();
    let server_thread = std::thread::spawn(move || {
        let mut log = Vec::new();
        let opts = ServeOptions {
            shutdown_after: Some(Duration::from_millis(600)),
            max_concurrent: Some(4),
            ..ServeOptions::default()
        };
        run_server(
            vec![7, 11, 13],
            &addr.to_string(),
            FoldStrategy::Incremental,
            &opts,
            &mut log,
        )
        .unwrap();
        String::from_utf8(log).unwrap()
    });
    // Wait for the listener, then query while the server is alive.
    let mut sum = None;
    for _ in 0..50 {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(50)).is_ok() {
            sum = Some(healthy_query(addr, &[0, 2], 77));
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(sum, Some(20), "query served before shutdown");
    let log = server_thread.join().unwrap();
    assert!(log.contains("served"), "aggregate report written: {log}");
}
