//! End-to-end tests of the `pps` CLI plumbing: a real server thread on an
//! ephemeral TCP port, queried by the library entry points the binary
//! wraps.

use std::net::TcpListener;
use std::path::PathBuf;

use pps_cli::{
    load_values, run_keygen, run_multiclient_sim, run_multidb_sim, run_query, run_server,
    QueryOptions, ServeOptions,
};
use pps_obs::JsonValue;
use pps_protocol::FoldStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pps-cli-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Grabs an ephemeral port that is (momentarily) free.
fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap().to_string();
    drop(l);
    addr
}

fn spawn_server(values: Vec<u64>, addr: String, sessions: usize, fold: FoldStrategy) {
    spawn_server_opts(
        values,
        addr,
        fold,
        ServeOptions {
            max_sessions: Some(sessions),
            ..ServeOptions::default()
        },
    );
}

fn spawn_server_opts(values: Vec<u64>, addr: String, fold: FoldStrategy, opts: ServeOptions) {
    let server_addr = addr.clone();
    std::thread::spawn(move || {
        let mut log = Vec::new();
        run_server(values, &server_addr, fold, &opts, &mut log).unwrap();
    });
    // Wait for the listener to come up.
    for _ in 0..100 {
        if std::net::TcpStream::connect_timeout(
            &addr.parse().unwrap(),
            std::time::Duration::from_millis(50),
        )
        .is_ok()
        {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("server never came up on {addr}");
}

#[test]
fn serve_and_query_round_trip() {
    let addr = free_addr();
    // The probe connection in spawn_server consumes one session slot, so
    // allow two.
    spawn_server(
        vec![100, 200, 300, 400, 500],
        addr.clone(),
        2,
        FoldStrategy::Incremental,
    );

    let mut rng = StdRng::seed_from_u64(1);
    let opts = QueryOptions {
        key_bits: 128,
        batch: 10,
        ..QueryOptions::default()
    };
    let outcome = run_query(&addr, &[0, 2, 4], &opts, &mut rng).unwrap();
    assert_eq!(outcome.sum, 900);
    assert_eq!(outcome.n, 5);
    assert_eq!(outcome.selected, 3);
    assert!(outcome.bytes.0 > 0 && outcome.bytes.1 > 0);
}

#[test]
fn multiexp_server_agrees() {
    let addr = free_addr();
    spawn_server((1..=50).collect(), addr.clone(), 2, FoldStrategy::MultiExp);
    let mut rng = StdRng::seed_from_u64(2);
    let opts = QueryOptions {
        key_bits: 128,
        batch: 16,
        client_threads: 2,
        ..QueryOptions::default()
    };
    let outcome = run_query(&addr, &[9, 19, 29], &opts, &mut rng).unwrap();
    // Rows 9, 19, 29 hold values 10, 20, 30.
    assert_eq!(outcome.sum, 60);
}

#[test]
fn stored_key_query() {
    let dir = temp_dir();
    let key_path = dir.join("client.key");
    let mut rng = StdRng::seed_from_u64(3);
    run_keygen(128, &key_path, &mut rng).unwrap();

    let addr = free_addr();
    spawn_server(vec![7, 11, 13], addr.clone(), 2, FoldStrategy::Incremental);
    let opts = QueryOptions {
        key_bits: 0,
        key_file: Some(key_path.to_string_lossy().into_owned()),
        batch: 3,
        ..QueryOptions::default()
    };
    let outcome = run_query(&addr, &[1, 2], &opts, &mut rng).unwrap();
    assert_eq!(outcome.sum, 24);
}

#[test]
fn out_of_range_selection_fails_cleanly() {
    let addr = free_addr();
    spawn_server(vec![1, 2, 3], addr.clone(), 2, FoldStrategy::Incremental);
    let mut rng = StdRng::seed_from_u64(4);
    let opts = QueryOptions {
        key_bits: 128,
        batch: 1,
        ..QueryOptions::default()
    };
    let err = run_query(&addr, &[5], &opts, &mut rng).unwrap_err();
    assert!(err.message.contains("out of range"), "{}", err.message);
}

#[test]
fn connection_refused_is_a_runtime_error() {
    let mut rng = StdRng::seed_from_u64(5);
    let opts = QueryOptions {
        key_bits: 128,
        batch: 1,
        ..QueryOptions::default()
    };
    let err = run_query("127.0.0.1:1", &[0], &opts, &mut rng).unwrap_err();
    assert_eq!(err.code, 1);
}

#[test]
fn sharded_query_round_trip() {
    // Three `pps shard-serve` workers, each owning one contiguous
    // horizontal partition of the global rows 1..=30; `pps query
    // --shards` fans out, combines the blinded partials, and recovers
    // the exact global sum.
    let shards: Vec<String> = (0..3)
        .map(|i| {
            let addr = free_addr();
            let lo = i * 10 + 1;
            // The probe connection in spawn_server_opts consumes one
            // session slot, so allow two.
            spawn_server_opts(
                (lo..lo + 10).collect(),
                addr.clone(),
                FoldStrategy::MultiExp,
                ServeOptions {
                    max_sessions: Some(2),
                    shard_only: true,
                    ..ServeOptions::default()
                },
            );
            addr
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(7);
    let opts = QueryOptions {
        key_bits: 128,
        batch: 4,
        shards,
        ..QueryOptions::default()
    };
    // Global rows 0, 10, 20, 29 hold values 1, 11, 21, 30.
    let outcome = run_query("", &[0, 10, 20, 29], &opts, &mut rng).unwrap();
    assert_eq!(outcome.sum, 63);
    assert_eq!(outcome.n, 30);
    assert_eq!(outcome.selected, 4);
    assert!(outcome.bytes.0 > 0 && outcome.bytes.1 > 0);
}

#[test]
fn traced_sharded_query_emits_merged_timeline_json() {
    // Three shard workers, each with a live obs endpoint, queried
    // through the full CLI surface: `pps query --shards ... --shard-obs
    // ... --trace json` must print one JSON document with the report,
    // the minted trace id, and the merged cross-process timeline.
    let mut shards = Vec::new();
    let mut obs = Vec::new();
    for i in 0..3u64 {
        let addr = free_addr();
        let obs_addr = free_addr();
        let lo = i * 10 + 1;
        spawn_server_opts(
            (lo..lo + 10).collect(),
            addr.clone(),
            FoldStrategy::MultiExp,
            ServeOptions {
                shard_only: true,
                metrics_addr: Some(obs_addr.clone()),
                ..ServeOptions::default()
            },
        );
        shards.push(addr);
        obs.push(obs_addr);
    }

    let args: Vec<String> = [
        "query",
        "--shards",
        &shards.join(","),
        "--shard-obs",
        &obs.join(","),
        "--select",
        "0,10,20,29",
        "--key-bits",
        "128",
        "--batch",
        "4",
        "--trace",
        "json",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut out = Vec::new();
    pps_cli::run(&args, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();

    // The JSON document is pretty-rendered, so its closing brace sits
    // alone at the start of a line; the human summary follows it.
    let json_end = text.rfind("\n}").expect("pretty JSON document") + 2;
    let parsed = JsonValue::parse(&text[..json_end]).expect("valid JSON");
    assert!(text[json_end..].contains("private sum of 4 selected rows"));

    let trace_id = parsed
        .get("trace_id")
        .and_then(JsonValue::as_str)
        .expect("trace_id field");
    assert_eq!(trace_id.len(), 32, "128-bit lowercase hex id: {trace_id}");
    assert!(trace_id.chars().all(|c| c.is_ascii_hexdigit()));

    let report = parsed.get("report").expect("report object");
    let phases = report.get("phases").expect("phase decomposition");
    assert!(phases.get("server_compute").is_some(), "phase fields");

    let timeline = parsed.get("timeline").expect("timeline object");
    assert_eq!(
        timeline.get("processes").and_then(JsonValue::as_u64),
        Some(4),
        "client + 3 shard legs"
    );
    let entries = timeline
        .get("entries")
        .and_then(JsonValue::as_array)
        .expect("entries array");
    assert!(!entries.is_empty());
    for entry in entries {
        assert_eq!(
            entry
                .get("record")
                .and_then(|r| r.get("trace_id")?.as_str()),
            Some(trace_id),
            "every timeline record shares the query's trace id"
        );
    }
    let labels: std::collections::BTreeSet<&str> = entries
        .iter()
        .filter_map(|e| e.get("process_label").and_then(JsonValue::as_str))
        .collect();
    assert!(
        labels.contains("client")
            && labels.contains("shard0")
            && labels.contains("shard1")
            && labels.contains("shard2"),
        "all four processes contributed records: {labels:?}"
    );
}

#[test]
fn multiclient_sim_reports_oracle_checked_total() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut out = Vec::new();
    run_multiclient_sim((1..=40).collect(), 4, 128, &mut rng, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("k=4 clients"), "{text}");
    assert!(text.contains("oracle-checked"), "{text}");
}

#[test]
fn multidb_sim_blinded_and_plain() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut out = Vec::new();
    run_multidb_sim((1..=30).collect(), 3, true, 128, &mut rng, &mut out).unwrap();
    let blinded = String::from_utf8(out).unwrap();
    assert!(blinded.contains("oracle-checked"), "{blinded}");
    assert!(blinded.contains("blinded mod 2^(key_bits-2)"), "{blinded}");

    let mut out = Vec::new();
    run_multidb_sim((1..=30).collect(), 3, false, 128, &mut rng, &mut out).unwrap();
    let plain = String::from_utf8(out).unwrap();
    assert!(plain.contains("partition 2: partial"), "{plain}");
    assert!(plain.contains("oracle-checked"), "{plain}");

    let err = run_multidb_sim(vec![1, 2], 3, true, 128, &mut rng, &mut Vec::new()).unwrap_err();
    assert!(
        err.message.contains("at least one row per partition"),
        "{}",
        err.message
    );
}

#[test]
fn value_file_to_server_pipeline() {
    let dir = temp_dir();
    let data = dir.join("data.txt");
    std::fs::write(&data, "# salaries\n1000\n2000\n3000\n").unwrap();
    let values = load_values(&data).unwrap();

    let addr = free_addr();
    spawn_server(values, addr.clone(), 2, FoldStrategy::Incremental);
    let mut rng = StdRng::seed_from_u64(6);
    let opts = QueryOptions {
        key_bits: 128,
        client_threads: 4,
        ..QueryOptions::default()
    };
    let outcome = run_query(&addr, &[0, 2], &opts, &mut rng).unwrap();
    assert_eq!(outcome.sum, 4000);
}
