//! End-to-end exercises for the networked sharded-query subsystem
//! (PROTOCOL.md §11): `k` shard workers over real TCP sockets, each
//! owning one horizontal partition and answering only correlated-blinded
//! partial sums; the client fans one query out, combines the partials
//! mod `M`, and must recover the exact plaintext-oracle sum — while no
//! shard (and no wire observer) ever exposes an unblinded partial, and
//! a mid-stream disconnect on one leg resumes from that leg's own
//! checkpoint without re-issuing the others.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use pps_bignum::Uint;
use pps_obs::{MetricsServer, Registry};
use pps_protocol::{
    run_sharded_query, run_sharded_query_with, run_tcp_query, Database, FoldStrategy,
    ProtocolError, ServerObs, ShardObs, ShardQueryConfig, SumClient, TcpQueryConfig, TcpServer,
};
use pps_transport::{Fault, FaultSchedule, FaultyStream, RetryPolicy, StreamWire, TransportError};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 48;
const K: usize = 3;
const ROWS_PER_SHARD: usize = N / K;
const BATCH: usize = 4; // 4 batches per 16-row shard leg

fn value(global: usize) -> u64 {
    global as u64 * 7 + 3
}

/// Shard `i`'s partition: global rows `[16i, 16i + 16)`.
fn shard_db(i: usize) -> Arc<Database> {
    let lo = i * ROWS_PER_SHARD;
    Arc::new(Database::new((lo..lo + ROWS_PER_SHARD).map(value).collect()).unwrap())
}

fn selection() -> Vec<usize> {
    (0..N).step_by(3).collect()
}

fn oracle() -> u128 {
    selection().iter().map(|&i| value(i) as u128).sum()
}

/// Plaintext partial of shard `i` — what its blinded answer must NOT be.
fn shard_oracle(i: usize) -> u128 {
    let lo = i * ROWS_PER_SHARD;
    selection()
        .iter()
        .filter(|&&g| g >= lo && g < lo + ROWS_PER_SHARD)
        .map(|&g| value(g) as u128)
        .sum()
}

fn config(policy: RetryPolicy) -> ShardQueryConfig {
    ShardQueryConfig {
        tcp: TcpQueryConfig {
            batch_size: BATCH,
            client_threads: 1,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            retry: policy,
            ..TcpQueryConfig::default()
        },
        value_bound: Some(value(N - 1) + 1),
    }
}

/// A TCP connector whose first attempt's stream gets a fault schedule
/// injected under the framing layer.
fn faulty_leg(
    addr: SocketAddr,
    kill_first_write_at: Option<u64>,
) -> impl FnMut(u32) -> Result<StreamWire<FaultyStream<TcpStream>>, ProtocolError> + Send {
    move |attempt| {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))?;
        let schedule = match (kill_first_write_at, attempt) {
            (Some(at), 1) => FaultSchedule::new().on_write(at, Fault::Disconnect),
            _ => FaultSchedule::new(),
        };
        Ok(FaultyStream::wire(stream, schedule))
    }
}

/// The headline property: a networked k=3 query over loopback returns
/// the exact plaintext-oracle sum, every per-leg partial arrives
/// blinded, and the shard counters land on a live `/metrics` endpoint.
#[test]
fn clean_three_shard_query_matches_oracle_with_blinded_partials() {
    let registry = Arc::new(Registry::new());
    let obs = ShardObs::new(Arc::clone(&registry));

    let servers: Vec<TcpServer> = (0..K)
        .map(|i| {
            TcpServer::bind(shard_db(i), "127.0.0.1:0", FoldStrategy::MultiExp)
                .unwrap()
                .require_shard_handshake()
        })
        .collect();
    let addrs: Vec<String> = servers
        .iter()
        .map(|s| s.local_addr().unwrap().to_string())
        .collect();

    let outcome = std::thread::scope(|scope| {
        let handles: Vec<_> = servers
            .into_iter()
            .map(|s| scope.spawn(move || s.serve(Some(1))))
            .collect();

        let mut rng = StdRng::seed_from_u64(71);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let outcome = run_sharded_query(
            &addrs,
            &client,
            &selection(),
            &config(RetryPolicy::default()),
            Some(&obs),
            &mut rng,
        )
        .unwrap();
        for h in handles {
            let stats = h.join().unwrap();
            assert_eq!(stats.sessions, 1);
            assert_eq!(stats.failed, 0);
        }
        outcome
    });

    assert_eq!(outcome.sum, oracle(), "blindings must cancel exactly");
    assert_eq!(outcome.n, N, "global index space spans all shards");
    assert_eq!(outcome.selected, selection().len());
    assert_eq!(outcome.legs.len(), K);
    for leg in &outcome.legs {
        assert_eq!(leg.rows, ROWS_PER_SHARD);
        assert_eq!(leg.attempts, 1, "leg {}: clean run", leg.leg);
        assert_eq!(leg.resumed_attempts, 0);
        // Privacy: the decrypted per-shard answer is NOT the plaintext
        // partial — it is blinded (uniform in M = 2^126, so a collision
        // with the true partial is negligible).
        assert_ne!(
            leg.blinded_partial,
            Uint::from_u128(shard_oracle(leg.leg)),
            "leg {}: partial must arrive blinded",
            leg.leg
        );
    }

    let scrape = registry.render_prometheus();
    assert!(
        scrape.contains("pps_shard_legs_total 3\n"),
        "scrape says\n{scrape}"
    );
    assert!(scrape.contains("pps_shard_resumes_total 0\n"));

    // The same counters are visible on a live /metrics endpoint.
    let metrics = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let mut http = TcpStream::connect(metrics.addr()).unwrap();
    write!(http, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    metrics.stop();
    assert!(
        body.contains("pps_shard_legs_total 3"),
        "/metrics says\n{body}"
    );
    assert!(body.contains("pps_shard_resumes_total 0"));
}

/// The chaos scenario: one leg's connection dies mid-stream; that leg —
/// and only that leg — reconnects and resumes from its own checkpoint.
/// The combined sum still matches the oracle, the untouched legs
/// re-send zero bytes, and the resumed leg undercuts a full re-issue by
/// at least one whole batch.
#[test]
fn killed_leg_resumes_alone_and_sum_still_matches_oracle() {
    let registry = Arc::new(Registry::new());
    let obs = ShardObs::new(Arc::clone(&registry));

    let servers: Vec<TcpServer> = (0..K)
        .map(|i| {
            TcpServer::bind(shard_db(i), "127.0.0.1:0", FoldStrategy::default())
                .unwrap()
                .require_shard_handshake()
                .with_observability(ServerObs::new(Arc::new(Registry::new())))
        })
        .collect();
    let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr().unwrap()).collect();

    let outcome = std::thread::scope(|scope| {
        let handles: Vec<_> = servers
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                // The killed leg's worker serves two connections: the
                // broken one and the resuming one.
                let sessions = if i == 1 { 2 } else { 1 };
                scope.spawn(move || s.serve(Some(sessions)))
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(72);
        let client = SumClient::generate(128, &mut rng).unwrap();
        // Leg 1 client write offsets on attempt 1: 0 = ShardHello,
        // 1 = SizeRequest, 2 = Hello, 3.. = batches. Killing write 4
        // guarantees batch 0 was fully delivered, so the resume has a
        // checkpoint strictly ahead of a fresh start.
        let legs = vec![
            faulty_leg(addrs[0], None),
            faulty_leg(addrs[1], Some(4)),
            faulty_leg(addrs[2], None),
        ];
        let outcome = run_sharded_query_with(
            legs,
            &client,
            &selection(),
            &config(RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(50),
                max_delay: Duration::from_millis(200),
            }),
            Some(&obs),
            &mut rng,
        )
        .unwrap();

        let stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // The killed worker saw the broken session fail and the resumed
        // one complete; its neighbours saw one clean session each.
        assert_eq!(stats[1].failed, 1, "the killed connection");
        assert_eq!(stats[1].resumed, 1);
        assert_eq!(stats[1].sessions, 1, "the resumed session completed");
        for i in [0, 2] {
            assert_eq!(stats[i].sessions, 1, "worker {i} untouched");
            assert_eq!(stats[i].failed, 0);
            assert_eq!(stats[i].resumed, 0);
        }
        (outcome, client)
    });
    let (outcome, client) = outcome;

    assert_eq!(outcome.sum, oracle(), "resumed fan-out still exact");
    assert_eq!(outcome.legs[1].attempts, 2, "killed leg retried once");
    assert_eq!(
        outcome.legs[1].resumed_attempts, 1,
        "killed leg resumed, not re-issued"
    );
    for i in [0, 2] {
        assert_eq!(outcome.legs[i].attempts, 1, "leg {i} untouched");
        assert_eq!(
            outcome.legs[i].attempt_payload_bytes.len(),
            1,
            "leg {i} re-sent zero bytes"
        );
        assert_ne!(
            outcome.legs[i].blinded_partial,
            Uint::from_u128(shard_oracle(i)),
            "leg {i}: still blinded"
        );
    }
    // The resumed attempt undercuts a full re-issue by at least one
    // whole batch. Every leg's full attempt costs the same bytes (same
    // key, same rows, and at k=3 every ShardHello carries exactly two
    // seeds), so leg 0's clean attempt is the baseline.
    let full_bytes = outcome.legs[0].attempt_payload_bytes[0];
    let resent = *outcome.legs[1].attempt_payload_bytes.last().unwrap();
    let batch_payload = 12 + BATCH * client.keypair().public.ciphertext_bytes();
    assert!(
        resent + batch_payload <= full_bytes,
        "resumed leg re-sent {resent} bytes, which should undercut a full \
         re-issue ({full_bytes}) by at least one batch ({batch_payload})"
    );

    let scrape = registry.render_prometheus();
    assert!(
        scrape.contains("pps_shard_legs_total 3\n"),
        "scrape says\n{scrape}"
    );
    assert!(
        scrape.contains("pps_shard_resumes_total 1\n"),
        "scrape says\n{scrape}"
    );
}

/// A shard worker must refuse to answer unblinded: a plain (unsharded)
/// query against it fails instead of leaking a raw partial sum.
#[test]
fn shard_worker_rejects_plain_queries() {
    let server = TcpServer::bind(shard_db(0), "127.0.0.1:0", FoldStrategy::default())
        .unwrap()
        .require_shard_handshake();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve(Some(1)));

    let mut rng = StdRng::seed_from_u64(73);
    let client = SumClient::generate(128, &mut rng).unwrap();
    let err = run_tcp_query(
        &addr.to_string(),
        &client,
        &[0, 1],
        &TcpQueryConfig {
            batch_size: BATCH,
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            ..TcpQueryConfig::default()
        },
        &mut rng,
    )
    .unwrap_err();
    // The server drops the session at the gate; the client surfaces it
    // as a dead connection (the server never ACKs the hello).
    assert!(
        matches!(err, ProtocolError::Transport(_)),
        "expected a transport failure, got {err:?}"
    );

    let stats = server_thread.join().unwrap();
    assert_eq!(stats.sessions, 0, "no session may complete unblinded");
    assert_eq!(stats.failed, 1);
}

/// The non-private baseline is the sharpest leak: `PlainIndices` in,
/// raw plaintext sum out, one index at a time. A shard worker must
/// refuse it on an unblinded session — the gate covers every query
/// entry point, not just `Hello`.
#[test]
fn shard_worker_rejects_plain_indices_without_handshake() {
    use pps_protocol::messages::PlainIndices;
    use pps_transport::{TcpWire, Wire};

    let server = TcpServer::bind(shard_db(0), "127.0.0.1:0", FoldStrategy::default())
        .unwrap()
        .require_shard_handshake();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve(Some(1)));

    let mut wire = TcpWire::connect(&addr.to_string()).unwrap();
    wire.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    wire.send(PlainIndices { indices: vec![0] }.encode().unwrap())
        .unwrap();
    // The worker hangs up instead of answering with a raw row value.
    assert!(
        wire.recv().is_err(),
        "an unblinded plaintext probe must get no reply"
    );

    let stats = server_thread.join().unwrap();
    assert_eq!(stats.sessions, 0);
    assert_eq!(stats.failed, 1);
}

/// Even *after* a valid shard handshake, `PlainIndices` stays refused:
/// the plaintext baseline never folds the blinding into its reply, so
/// answering it would read the partition out unblinded regardless.
#[test]
fn shard_worker_rejects_plain_indices_even_after_handshake() {
    use pps_protocol::messages::{PlainIndices, ShardHello};
    use pps_transport::{TcpWire, Wire};

    let server = TcpServer::bind(shard_db(0), "127.0.0.1:0", FoldStrategy::default())
        .unwrap()
        .require_shard_handshake();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve(Some(1)));

    let mut wire = TcpWire::connect(&addr.to_string()).unwrap();
    wire.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    wire.send(
        ShardHello {
            shard_index: 0,
            shard_count: 2,
            m_bits: 126,
            seeds_add: vec![vec![7u8; 32]],
            seeds_sub: vec![],
            trace: None,
        }
        .encode()
        .unwrap(),
    )
    .unwrap();
    wire.send(PlainIndices { indices: vec![0] }.encode().unwrap())
        .unwrap();
    assert!(
        wire.recv().is_err(),
        "a blinded session must still refuse the plaintext baseline"
    );

    let stats = server_thread.join().unwrap();
    assert_eq!(stats.sessions, 0);
    assert_eq!(stats.failed, 1);
}

/// A worker that claims an absurd partition size at discovery is
/// refused before its reply can wrap the client's offset arithmetic
/// and misroute the selection split.
#[test]
fn implausible_shard_size_is_a_config_error() {
    use pps_protocol::messages::SizeReply;
    use pps_transport::{TcpWire, Wire};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let worker = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut wire = TcpWire::new(stream);
        let _shard_hello = wire.recv().unwrap();
        let _size_request = wire.recv().unwrap();
        wire.send(SizeReply { n: u64::MAX }.encode().unwrap())
            .unwrap();
    });

    let mut rng = StdRng::seed_from_u64(74);
    let client = SumClient::generate(128, &mut rng).unwrap();
    let err = run_sharded_query(
        &[addr.to_string()],
        &client,
        &[0],
        &config(RetryPolicy::default()),
        None,
        &mut rng,
    )
    .unwrap_err();
    assert!(
        matches!(&err, ProtocolError::Config(msg) if msg.contains("cap")),
        "expected the size cap to trip, got {err:?}"
    );
    worker.join().unwrap();
}
