//! Smoke tests for the figure-regeneration harness: every figure runs end
//! to end on a miniature sweep and produces structurally valid tables.
//! (Absolute timing claims are checked in release mode by the harness
//! itself; these tests assert structure and the link-model invariants
//! that are deterministic even in debug builds.)

use pps_bench::figures::{self, Harness};

fn harness() -> Harness {
    Harness::new(128, 42)
}

#[test]
fn every_figure_renders() {
    let mut h = harness();
    let ns = [16usize, 32];
    let tables = [
        figures::fig2(&mut h, &ns),
        figures::fig3(&mut h, &ns),
        figures::fig4(&mut h, &ns),
        figures::fig5(&mut h, &ns),
        figures::fig6(&mut h, &ns),
        figures::fig7(&mut h, &ns),
        figures::fig9(&mut h, &ns),
        figures::baselines(&mut h, &ns),
    ];
    for t in &tables {
        assert_eq!(t.rows.len(), 2, "{}", t.title);
        assert!(
            !t.notes.is_empty(),
            "{} needs paper-comparison notes",
            t.title
        );
        let rendered = t.render();
        assert!(rendered.contains("=="));
        // Every cell parses back out of the render.
        for row in &t.rows {
            for cell in row {
                assert!(rendered.contains(cell.as_str()));
            }
        }
    }
}

#[test]
fn smc_figure_renders() {
    // GC OT labels need > 128-bit keys.
    let mut h = Harness::new(192, 43);
    let t = figures::smc(&mut h, &[4, 8]);
    assert_eq!(t.rows.len(), 2);
    assert!(t.notes.iter().any(|n| n.contains("Fairplay")));
}

#[test]
fn figures_scale_linearly_in_traffic() {
    // Deterministic invariant: over the 56 Kbps modem (fig3) the comm
    // component is serialization-dominated, so it scales linearly with n.
    // (Over gigabit LAN at tiny n, per-message latency dominates instead,
    // which is why this checks the modem figure.)
    let mut h = harness();
    let t = figures::fig3(&mut h, &[50, 100]);
    let comm_small: f64 = t.rows[0][3].parse().unwrap();
    let comm_large: f64 = t.rows[1][3].parse().unwrap();
    // Doubling n adds exactly one batch's worth of ciphertext bytes:
    // Δcomm = 50 ciphertexts × 8 bits/byte ÷ 56 kbps (latency and the
    // constant messages cancel in the difference).
    let ct_bytes = 2 * 128 / 8; // 128-bit key → 256-bit N² → 32 B
    let expected_delta = (50 * ct_bytes * 8) as f64 / 56e3;
    let delta = comm_large - comm_small;
    assert!(
        (delta - expected_delta).abs() < 0.05 * expected_delta + 0.01,
        "Δcomm {delta} vs model {expected_delta}"
    );
}

#[test]
fn modem_figures_dominated_by_comm() {
    let mut h = harness();
    let t = figures::fig6(&mut h, &[30]);
    let share: f64 = t.rows[0][5].parse().unwrap();
    assert!(
        share > 50.0,
        "56 Kbps must dominate a preprocessed run, got {share}%"
    );
}

#[test]
fn fig3_verdict_note_present() {
    let mut h = harness();
    let t = figures::fig3(&mut h, &[20]);
    assert!(t.notes.iter().any(|n| n.contains("verdict")));
}
