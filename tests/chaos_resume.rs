//! Chaos campaign for session resumption and crash containment.
//!
//! Deterministic [`FaultSchedule`]s kill client connections mid-stream
//! at scripted write offsets across several seeds; the retrying client
//! must reconnect, present its session ticket, and continue from the
//! server's last acknowledged batch. Each scenario asserts three things
//! the paper's deployment story depends on: the resumed sum equals the
//! plaintext selected sum, the resumed attempt re-sends strictly fewer
//! index-vector bytes than a full re-issue, and the server's aggregate
//! accounting (failed / resumed / panicked / evicted checkpoints) stays
//! exact under fire.
//!
//! The database / selection / retry-config / faulty-query scaffolding
//! lives in [`pps_sim::harness::chaos`], shared with the
//! failure-injection suite and the simulator's own campaigns.
//!
//! [`FaultSchedule`]: pps_transport::FaultSchedule

use std::sync::{Arc, Mutex};
use std::time::Duration;

use pps_obs::Registry;
use pps_protocol::{
    run_tcp_query_with_retry, FoldStrategy, ResumptionConfig, ServerObs, SessionEvent, SumClient,
    TcpServer,
};
use pps_sim::harness::chaos::{config, database, expected_sum, faulty_query, selection, BATCH};
use pps_transport::{Fault, FaultSchedule, RetryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The tentpole scenario: for several seeds, the first attempt's
/// connection dies at a scripted write offset after at least one batch
/// is through; the retry resumes and must (a) produce the plaintext
/// sum, (b) re-send strictly fewer payload bytes than a clean full
/// query — by at least one whole batch.
#[test]
fn scripted_disconnects_resume_with_fewer_bytes_resent() {
    for seed in [101u64, 202, 303, 404, 505] {
        // Client write ops: 0 = SizeRequest, 1 = Hello, 2.. = batches.
        // Offset ≥ 3 guarantees at least one batch was fully written
        // (and, the stream being dropped cleanly, delivered).
        let kill_at = 3 + seed % 7;

        let registry = Arc::new(Registry::new());
        let server = TcpServer::bind(database(), "127.0.0.1:0", FoldStrategy::MultiExp)
            .unwrap()
            .with_observability(ServerObs::new(Arc::clone(&registry)));
        let addr = server.local_addr().unwrap();
        let events = Mutex::new(Vec::new());
        let stats = std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| {
                server.serve_with(Some(3), &|e| {
                    if let SessionEvent::Resumed { session } = e {
                        events.lock().unwrap().push(session);
                    }
                })
            });

            let mut rng = StdRng::seed_from_u64(seed);
            let client = SumClient::generate(128, &mut rng).unwrap();
            let cfg = config(RetryPolicy {
                max_attempts: 4,
                base_delay: Duration::from_millis(50),
                max_delay: Duration::from_millis(200),
            });

            // Baseline: a clean query's full payload cost.
            let clean =
                faulty_query(addr, &client, &cfg, &mut rng, |_| FaultSchedule::new()).unwrap();
            assert_eq!(clean.sum, expected_sum(), "seed {seed}: clean query");
            assert_eq!(clean.retry.attempts, 1);
            assert_eq!(clean.resumed_attempts, 0);
            let full_bytes = clean.attempt_payload_bytes[0];

            // Chaos: attempt 1 dies at the scripted write, attempt 2
            // resumes.
            let out = faulty_query(addr, &client, &cfg, &mut rng, |attempt| {
                if attempt == 1 {
                    FaultSchedule::new().on_write(kill_at, Fault::Disconnect)
                } else {
                    FaultSchedule::new()
                }
            })
            .unwrap();
            assert_eq!(out.sum, expected_sum(), "seed {seed}: resumed sum");
            assert_eq!(out.retry.attempts, 2, "seed {seed}");
            assert_eq!(
                out.resumed_attempts, 1,
                "seed {seed}: resumed, not re-issued"
            );

            let batch_payload = 12 + BATCH * client.keypair().public.ciphertext_bytes();
            let resent = *out.attempt_payload_bytes.last().unwrap();
            assert!(
                resent + batch_payload <= full_bytes,
                "seed {seed}: resumed attempt re-sent {resent} bytes, which should \
                 undercut a full re-issue ({full_bytes}) by at least one batch \
                 ({batch_payload})"
            );
            server_thread.join().unwrap()
        });

        assert_eq!(stats.sessions, 2, "seed {seed}: clean + resumed");
        assert_eq!(stats.failed, 1, "seed {seed}: the killed connection");
        assert_eq!(stats.resumed, 1, "seed {seed}");
        assert_eq!(stats.panicked, 0, "seed {seed}");
        assert_eq!(events.into_inner().unwrap().len(), 1, "seed {seed}");

        let scrape = registry.render_prometheus();
        assert!(
            scrape.contains("pps_sessions_resumed_total 1\n"),
            "seed {seed}: scrape says\n{scrape}"
        );
        assert!(
            scrape.contains("pps_sessions_failed_total 1\n"),
            "seed {seed}"
        );
        assert!(
            scrape.contains("pps_sessions_panicked_total 0\n"),
            "seed {seed}"
        );
    }
}

/// A checkpoint that outlives its TTL is pruned; the resume is refused
/// and the client falls back to a full re-issue on the same connection
/// — correctness is never hostage to the optimization.
#[test]
fn stale_checkpoint_falls_back_to_full_reissue() {
    let ttl = Duration::from_millis(40);
    let server = TcpServer::bind(database(), "127.0.0.1:0", FoldStrategy::default())
        .unwrap()
        .with_resumption(ResumptionConfig { capacity: 8, ttl });
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve(Some(2)));

    let mut rng = StdRng::seed_from_u64(9);
    let client = SumClient::generate(128, &mut rng).unwrap();
    // Backoff far beyond the TTL: by the time attempt 2 presents its
    // ticket, the checkpoint is gone.
    let cfg = config(RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(250),
        max_delay: Duration::from_millis(250),
    });
    let out = faulty_query(addr, &client, &cfg, &mut rng, |attempt| {
        if attempt == 1 {
            FaultSchedule::new().on_write(4, Fault::Disconnect)
        } else {
            FaultSchedule::new()
        }
    })
    .unwrap();

    assert_eq!(out.sum, expected_sum());
    assert_eq!(out.retry.attempts, 2);
    assert_eq!(out.resumed_attempts, 0, "stale ticket must not resume");

    let stats = server_thread.join().unwrap();
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.resumed, 0);
    assert!(
        stats.checkpoints_evicted >= 1,
        "the expired checkpoint counts as evicted, got {}",
        stats.checkpoints_evicted
    );
}

/// Crash containment: a session thread that panics is recorded as
/// `Panicked`, releases its admission slot (the server would wedge here
/// before the catch_unwind boundary existed), and leaves concurrent
/// accounting intact — the retrying client still gets the right sum.
#[test]
fn panicked_session_is_contained_and_counted() {
    let registry = Arc::new(Registry::new());
    let server = TcpServer::bind(database(), "127.0.0.1:0", FoldStrategy::default())
        .unwrap()
        .with_observability(ServerObs::new(Arc::clone(&registry)))
        .with_admission(1, pps_protocol::Admission::Queue)
        .with_session_fault_hook(|session| {
            if session == 1 {
                panic!("injected chaos: session thread dies");
            }
        });
    let addr = server.local_addr().unwrap();

    let events = Mutex::new(Vec::new());
    let stats = std::thread::scope(|scope| {
        let server_thread = scope.spawn(|| {
            server.serve_with(Some(2), &|e| {
                if let SessionEvent::Panicked { session } = e {
                    events.lock().unwrap().push(session);
                }
            })
        });

        let mut rng = StdRng::seed_from_u64(31);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let cfg = config(RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(200),
        });
        // Session 1 panics server-side before speaking; the client sees
        // a dead connection and retries into session 2. With the
        // admission gate at one slot, this only works if the panicked
        // session released it.
        let out =
            run_tcp_query_with_retry(&addr.to_string(), &client, &selection(), &cfg, &mut rng)
                .unwrap();
        assert_eq!(out.sum, expected_sum());
        assert!(out.retry.attempts >= 2);
        server_thread.join().unwrap()
    });

    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.sessions, 1, "the healthy session completed");
    assert_eq!(stats.failed, 0, "a panic is not a protocol failure");
    assert_eq!(events.into_inner().unwrap(), vec![1]);

    let scrape = registry.render_prometheus();
    assert!(
        scrape.contains("pps_sessions_panicked_total 1\n"),
        "scrape says\n{scrape}"
    );
    assert!(scrape.contains("pps_sessions_completed_total 1\n"));
}
