//! End-to-end distributed tracing (PROTOCOL.md §9.4): a sharded k=3
//! query over real TCP carries one wire-propagated trace context to
//! every worker, each worker's `TraceBuffer` serves its server-side
//! spans back over `GET /trace/<id>`, and the client assembles one
//! causally ordered cross-process timeline — client spans plus all
//! three legs' server-side fold spans, every record sharing the query's
//! trace id, phase sums reconciling against the `RunReport` bridge.
//!
//! The compatibility half of the contract is proved by bytes: with
//! tracing off (the default), every handshake frame encodes exactly the
//! pre-tracing layout, so v2 peers cannot tell the builds apart. The
//! cost half is a CI guard: the disabled-tracer path must be near-free.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pps_bignum::Uint;
use pps_obs::{
    Collector, JsonValue, MetricsServer, NullCollector, Record, Registry, TraceBuffer,
    TraceContext, Tracer,
};
use pps_protocol::messages::{Hello, Resume, ShardHello};
use pps_protocol::{
    run_sharded_query_traced, Database, FoldStrategy, PhaseTotals, ServerObs, ShardQueryConfig,
    SumClient, TcpQueryConfig, TcpServer, TracedShardQuery,
};
use pps_transport::RetryPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 12;
const K: usize = 3;
const ROWS_PER_SHARD: usize = N / K;

fn value(global: usize) -> u64 {
    global as u64 * 5 + 2
}

fn shard_db(i: usize) -> Arc<Database> {
    let lo = i * ROWS_PER_SHARD;
    Arc::new(Database::new((lo..lo + ROWS_PER_SHARD).map(value).collect()).unwrap())
}

fn selection() -> Vec<usize> {
    (0..N).step_by(2).collect()
}

fn oracle() -> u128 {
    selection().iter().map(|&i| value(i) as u128).sum()
}

fn config() -> ShardQueryConfig {
    ShardQueryConfig {
        tcp: TcpQueryConfig {
            batch_size: 2,
            client_threads: 1,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::default(),
            ..TcpQueryConfig::default()
        },
        value_bound: Some(value(N - 1) + 1),
    }
}

/// One traced k=3 query against real shard workers, each with its own
/// registry, trace buffer, and live obs endpoint.
fn run_traced_query(seed: u64) -> TracedShardQuery {
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    let mut obs_addrs = Vec::new();
    let mut metrics_servers = Vec::new();
    for i in 0..K {
        let registry = Arc::new(Registry::new());
        let traces = Arc::new(TraceBuffer::default());
        let tracer = Tracer::new(Arc::clone(&traces) as Arc<dyn Collector>);
        let obs = ServerObs::with_tracer(Arc::clone(&registry), tracer);
        let metrics =
            MetricsServer::start_with_traces("127.0.0.1:0", registry, Arc::clone(&traces)).unwrap();
        obs_addrs.push(metrics.addr());
        metrics_servers.push(metrics);
        let server = TcpServer::bind(shard_db(i), "127.0.0.1:0", FoldStrategy::MultiExp)
            .unwrap()
            .require_shard_handshake()
            .with_observability(obs);
        addrs.push(server.local_addr().unwrap().to_string());
        servers.push(server);
    }

    std::thread::scope(|scope| {
        let handles: Vec<_> = servers
            .into_iter()
            .map(|s| scope.spawn(move || s.serve(Some(1))))
            .collect();

        let mut rng = StdRng::seed_from_u64(seed);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let traced = run_sharded_query_traced(
            &addrs,
            &obs_addrs,
            &client,
            &selection(),
            &config(),
            Arc::new(Registry::new()),
            &mut rng,
        )
        .unwrap();
        for h in handles {
            let stats = h.join().unwrap();
            assert_eq!(stats.sessions, 1, "one completed session per shard");
        }
        traced
    })
}

#[test]
fn traced_sharded_query_assembles_one_cross_process_timeline() {
    let tq = run_traced_query(4242);

    assert_eq!(tq.outcome.sum, oracle(), "tracing must not perturb the sum");
    assert_eq!(
        tq.legs_fetched, K,
        "every leg's server-side records fetched"
    );
    assert_eq!(tq.timeline.processes, K + 1);
    assert_eq!(
        tq.timeline.processes_seen(),
        K + 1,
        "client and all three legs contributed records"
    );

    // Every record on the timeline carries the query's trace id.
    for entry in &tq.timeline.entries {
        let trace = match &entry.record {
            Record::Span(s) => s.trace,
            Record::Event(e) => e.trace,
        };
        assert_eq!(
            trace.map(|c| c.trace_id),
            Some(tq.trace_id),
            "record from process {} missing the trace id",
            entry.process
        );
    }

    // Client-side structure: the query envelope plus one leg envelope
    // per shard.
    let client_spans: Vec<&str> = tq
        .timeline
        .entries
        .iter()
        .filter(|e| e.process == 0)
        .filter_map(|e| match &e.record {
            Record::Span(s) => Some(s.name.as_str()),
            Record::Event(_) => None,
        })
        .collect();
    assert!(client_spans.contains(&"sharded_query"));
    assert_eq!(
        client_spans.iter().filter(|n| **n == "shard_leg").count(),
        K,
        "one client leg envelope per shard: {client_spans:?}"
    );

    // Server-side structure: each leg contributed its session envelope
    // and its fold work (the server_compute phase total).
    for leg in 0..K {
        let leg_spans: Vec<&str> = tq
            .timeline
            .entries
            .iter()
            .filter(|e| e.process == leg + 1)
            .filter_map(|e| match &e.record {
                Record::Span(s) => Some(s.name.as_str()),
                Record::Event(_) => None,
            })
            .collect();
        assert!(
            leg_spans.contains(&"session"),
            "leg {leg} session span: {leg_spans:?}"
        );
        assert!(
            leg_spans.contains(&"server_compute"),
            "leg {leg} fold span: {leg_spans:?}"
        );
    }

    // The four-component report is exactly the PhaseTotals bridge over
    // the merged timeline's spans.
    let totals = PhaseTotals::from_spans(tq.timeline.spans());
    assert_eq!(tq.report.client_encrypt, totals.client_encrypt);
    assert_eq!(tq.report.comm, totals.comm);
    assert_eq!(tq.report.server_compute, totals.server_compute);
    assert_eq!(tq.report.client_decrypt, totals.client_decrypt);
    assert!(
        tq.report.server_compute > Duration::ZERO,
        "server fold time crossed the process boundary into the report"
    );
    assert_eq!(tq.report.result, oracle());
    assert!(tq.report.pipelined_total.is_some(), "query envelope span");
}

#[test]
fn chrome_trace_export_has_one_track_per_process() {
    let tq = run_traced_query(999);
    let rendered = tq.timeline.to_chrome_trace().render();
    let parsed = JsonValue::parse(&rendered).expect("chrome export is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");

    let mut pids: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("pid").and_then(JsonValue::as_u64))
        .collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids, vec![0, 1, 2, 3], "client + 3 shard-leg tracks");

    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert_eq!(names, vec!["client", "shard0", "shard1", "shard2"]);

    // Complete events carry microsecond timestamps and durations.
    assert!(events
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .all(|e| e.get("ts").and_then(JsonValue::as_f64).is_some()
            && e.get("dur").and_then(JsonValue::as_f64).is_some()));
}

/// With tracing off, every handshake message encodes exactly the
/// pre-tracing byte layout — a v2 peer sees identical bytes. With a
/// context attached, the only difference is the 24-byte trailer.
#[test]
fn untraced_handshake_frames_are_byte_identical_to_v2_layout() {
    let ctx = TraceContext::new(0xfeed_beef, 7);

    let hello = Hello {
        modulus: Uint::from_u64(0x0123_4567_89ab_cdef),
        total: 12,
        batch_size: 4,
        trace: None,
    };
    let mut expected = Vec::new();
    let m = hello.modulus.to_bytes_be();
    expected.extend_from_slice(&(m.len() as u16).to_be_bytes());
    expected.extend_from_slice(&m);
    expected.extend_from_slice(&12u64.to_be_bytes());
    expected.extend_from_slice(&4u32.to_be_bytes());
    let frame = hello.encode().unwrap();
    assert_eq!(&frame.payload[..], &expected[..], "hello v2 byte layout");
    let traced = Hello {
        trace: Some(ctx),
        ..hello
    }
    .encode()
    .unwrap();
    assert_eq!(traced.payload.len(), expected.len() + 24);

    let resume = Resume {
        session_id: 3,
        next_seq: 9,
        trace: None,
    };
    let mut expected = Vec::new();
    expected.extend_from_slice(&3u64.to_be_bytes());
    expected.extend_from_slice(&9u64.to_be_bytes());
    let frame = resume.encode().unwrap();
    assert_eq!(&frame.payload[..], &expected[..], "resume v2 byte layout");
    let traced = Resume {
        trace: Some(ctx),
        ..resume
    }
    .encode()
    .unwrap();
    assert_eq!(traced.payload.len(), expected.len() + 24);

    let shard = ShardHello {
        shard_index: 0,
        shard_count: 2,
        m_bits: 32,
        seeds_add: vec![vec![0xaa; 16]],
        seeds_sub: vec![],
        trace: None,
    };
    let mut expected = Vec::new();
    expected.extend_from_slice(&0u32.to_be_bytes());
    expected.extend_from_slice(&2u32.to_be_bytes());
    expected.extend_from_slice(&32u32.to_be_bytes());
    expected.extend_from_slice(&1u16.to_be_bytes());
    expected.extend_from_slice(&0u16.to_be_bytes());
    expected.extend_from_slice(&16u16.to_be_bytes());
    expected.extend_from_slice(&[0xaa; 16]);
    let frame = shard.encode().unwrap();
    assert_eq!(
        &frame.payload[..],
        &expected[..],
        "shard hello v2 byte layout"
    );
    let traced = ShardHello {
        trace: Some(ctx),
        ..shard
    }
    .encode()
    .unwrap();
    assert_eq!(traced.payload.len(), expected.len() + 24);
}

/// CI overhead guard: the disabled tracer (the default on every
/// un-instrumented server) and the NullCollector-backed tracer must
/// both be near-free — no allocation-heavy work on the untraced path.
#[test]
fn disabled_tracing_path_is_near_free() {
    const ITERS: u32 = 100_000;
    // Generous ceiling: 2µs per span+event pair. The real cost is a
    // couple of branches; the slack absorbs noisy shared CI runners.
    let budget = Duration::from_micros(2).checked_mul(ITERS).unwrap();

    for tracer in [
        Tracer::disabled(),
        Tracer::new(Arc::new(NullCollector) as Arc<dyn Collector>),
    ] {
        let start = Instant::now();
        for i in 0..ITERS {
            let span = tracer.span("fold").session(u64::from(i)).start();
            drop(span);
            tracer.event("tick", None, "");
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < budget,
            "untraced instrumentation cost {elapsed:?} for {ITERS} iterations (budget {budget:?})"
        );
    }
}
