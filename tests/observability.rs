//! End-to-end observability: a live `/metrics` endpoint scraped during
//! a multi-client run must reconcile — exactly — with the span-bridged
//! `RunReport`s the same queries produce, and the lifecycle counters
//! must match the ground truth of what the clients actually did
//! (including the faulty ones).
//!
//! This is the acceptance test for the telemetry subsystem: client and
//! server share one [`Registry`] and one [`RingCollector`] (registration
//! is idempotent, so both halves resolve the same atomics), which is
//! exactly the loopback deployment where the merged spans carry all four
//! of the paper's phase components.

use std::io::Write as IoWrite;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pps_obs::{http, MetricsServer, Phase, Registry, RingCollector, Tracer};
use pps_protocol::{
    run_tcp_query_observed, Database, FoldPlanCache, FoldStrategy, PhaseTotals, QueryObs,
    ServerObs, SessionEvent, SessionLimits, SumClient, TcpQueryConfig, TcpServer,
};
use pps_transport::FRAME_MAGIC;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pulls `name{labels} value` out of a Prometheus text body.
fn sample(body: &str, series: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.trim().parse().ok()
    })
}

/// Every non-comment line must be `name[{labels}] <float>`.
fn assert_parses_as_prometheus_text(body: &str) {
    assert!(!body.is_empty());
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unsplittable sample line: {line:?}"));
        assert!(
            series.chars().next().unwrap().is_ascii_alphabetic(),
            "series name starts oddly: {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "sample value is not a float: {line:?}"
        );
    }
}

fn scrape(addr: SocketAddr) -> String {
    let (status, body) = http::get(addr, "/metrics").expect("scrape");
    assert!(status.contains("200"), "{status}");
    body
}

#[test]
fn live_metrics_reconcile_with_span_bridged_reports() {
    // One registry, one ring: ServerObs and every QueryObs register the
    // same metric families and trace into the same span collector.
    let registry = Arc::new(Registry::new());
    let ring = Arc::new(RingCollector::new(4096));
    let server_obs = ServerObs::with_tracer(Arc::clone(&registry), Tracer::new(ring.clone()));

    let db = Arc::new(Database::new((0..32u64).collect()).unwrap());
    // Precomputed fold: the serve loop builds the per-database plan
    // through a (private, deterministic) cache, so the scrape below
    // must carry the pps_fold_plan_* families with live readings.
    let server = TcpServer::bind(db, "127.0.0.1:0", FoldStrategy::Precomputed)
        .unwrap()
        .with_fold_plan_cache(Arc::new(FoldPlanCache::new(2)))
        .with_limits(SessionLimits {
            read_timeout: Some(Duration::from_millis(250)),
            write_timeout: Some(Duration::from_secs(2)),
            session_deadline: Some(Duration::from_secs(2)),
        })
        .with_observability(server_obs);
    let addr = server.local_addr().unwrap();
    let metrics = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let metrics_addr = metrics.addr();

    // Ground truth the counters must reproduce: three healthy clients,
    // one staller (admitted, then starves its reads → evicted), one
    // vandal (garbage framing → failed). Five sessions in total.
    let evicted_seen = Arc::new(AtomicUsize::new(0));
    let failed_seen = Arc::new(AtomicUsize::new(0));

    let staller = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        // A syntactically valid frame header promising a payload that
        // never arrives: the per-read timeout must evict, not hang.
        let mut header = FRAME_MAGIC.to_be_bytes().to_vec();
        header.push(1);
        header.extend_from_slice(&64u32.to_be_bytes());
        s.write_all(&header).unwrap();
        std::thread::sleep(Duration::from_millis(600));
    });
    let vandal = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[0xBA, 0xD0, 0xF0, 0x0D, 1, 2, 3]).unwrap();
        let _ = std::io::Read::read(&mut s, &mut [0u8; 16]);
    });

    // Healthy clients, in parallel, each through its own QueryObs (the
    // shared registry hands every one the same underlying atomics).
    let selects: [&[usize]; 3] = [&[1, 2, 3], &[4, 5], &[10, 20, 30]];
    let clients: Vec<_> = selects
        .iter()
        .enumerate()
        .map(|(i, select)| {
            let registry = Arc::clone(&registry);
            let ring = ring.clone();
            let select = select.to_vec();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(900 + i as u64);
                let client = SumClient::generate(128, &mut rng).unwrap();
                let obs = QueryObs::with_collector(registry, ring);
                run_tcp_query_observed(
                    &addr.to_string(),
                    &client,
                    &select,
                    &TcpQueryConfig::default(),
                    &mut rng,
                    &obs,
                )
                .unwrap()
            })
        })
        .collect();

    // Scrape while the run is live — the endpoint serves concurrently
    // with the protocol sessions it measures.
    let live = scrape(metrics_addr);
    assert_parses_as_prometheus_text(&live);
    assert!(live.contains("pps_sessions_accepted_total"));

    let stats = {
        let evicted_seen = Arc::clone(&evicted_seen);
        let failed_seen = Arc::clone(&failed_seen);
        server.serve_with(Some(5), &move |event| match event {
            SessionEvent::Evicted { .. } => {
                evicted_seen.fetch_add(1, Ordering::Relaxed);
            }
            SessionEvent::Failed { .. } => {
                failed_seen.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        })
    };
    staller.join().unwrap();
    vandal.join().unwrap();
    let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    // Ground truth: the sums are right and the aggregate classifies
    // every ending correctly.
    let sums: Vec<u128> = outcomes.iter().map(|(out, _)| out.sum).collect();
    assert_eq!(sums, vec![6, 9, 60]);
    assert_eq!(stats.sessions, 3);
    assert_eq!(stats.failed, 1, "the vandal is a protocol failure");
    assert_eq!(stats.evicted, 1, "the staller is an eviction");
    assert_eq!(stats.refused, 0);
    assert_eq!(stats.accept_errors, 0);
    assert_eq!(stats.unserved(), 2);
    assert_eq!(evicted_seen.load(Ordering::Relaxed), 1);
    assert_eq!(failed_seen.load(Ordering::Relaxed), 1);

    // The quiet registry must now scrape deterministically: two
    // back-to-back scrapes are byte-identical.
    let body = scrape(metrics_addr);
    assert_parses_as_prometheus_text(&body);
    assert_eq!(body, scrape(metrics_addr), "quiet scrapes are stable");

    // Lifecycle counters match the ground truth exactly.
    assert_eq!(sample(&body, "pps_sessions_accepted_total "), Some(5.0));
    assert_eq!(sample(&body, "pps_sessions_completed_total "), Some(3.0));
    assert_eq!(sample(&body, "pps_sessions_failed_total "), Some(1.0));
    assert_eq!(sample(&body, "pps_sessions_evicted_total "), Some(1.0));
    assert_eq!(sample(&body, "pps_sessions_refused_total "), Some(0.0));
    assert_eq!(sample(&body, "pps_sessions_active "), Some(0.0));
    // Resumption/containment families register eagerly and read zero in
    // a run with no disconnect-resume traffic and no panics.
    assert_eq!(sample(&body, "pps_sessions_resumed_total "), Some(0.0));
    assert_eq!(sample(&body, "pps_sessions_panicked_total "), Some(0.0));
    assert_eq!(sample(&body, "pps_checkpoints_evicted_total "), Some(0.0));
    assert_eq!(sample(&body, "pps_retry_attempts_total "), Some(3.0));
    assert_eq!(sample(&body, "pps_retry_failures_total "), Some(0.0));
    // The fold-plan cache: one serve loop, one plan build, no rebuild
    // across the five sessions, digit table bytes held on the gauge.
    assert_eq!(sample(&body, "pps_fold_plan_builds_total "), Some(1.0));
    assert_eq!(sample(&body, "pps_fold_plan_hits_total "), Some(0.0));
    assert_eq!(
        sample(&body, "pps_fold_plan_build_seconds_count "),
        Some(1.0)
    );
    assert!(sample(&body, "pps_fold_plan_bytes ").unwrap() > 0.0);
    assert!(sample(&body, "pps_wire_bytes_sent_total ").unwrap() > 0.0);
    assert!(sample(&body, "pps_wire_bytes_received_total ").unwrap() > 0.0);
    // Build identity rides on every ServerObs-backed scrape: version
    // from the workspace manifest, magic from the framing layer.
    let build_info = format!(
        "pps_build_info{{version=\"{}\",magic=\"{:#06x}\"}} 1",
        env!("CARGO_PKG_VERSION"),
        FRAME_MAGIC,
    );
    assert!(body.contains(&build_info), "{build_info} missing in scrape");
    assert_eq!(sample(&body, "pps_slow_queries_total "), Some(0.0));

    // The acceptance criterion: the per-phase histograms scraped from
    // the live endpoint sum to the same four-component breakdown the
    // span-bridged reports record. The registry histograms and the
    // bridge ingest the *same* `Duration` values, so the Duration-level
    // comparison is exact; the scrape adds only float formatting.
    let reports: Vec<_> = outcomes.iter().map(|(_, r)| r.clone()).collect();
    let merged = PhaseTotals::from_spans(ring.spans().iter());
    assert_eq!(
        merged.client_encrypt,
        reports.iter().map(|r| r.client_encrypt).sum(),
        "bridge and reports agree on client_encrypt"
    );
    assert_eq!(merged.comm, reports.iter().map(|r| r.comm).sum());
    assert_eq!(
        merged.client_decrypt,
        reports.iter().map(|r| r.client_decrypt).sum()
    );
    // Networked clients cannot see server compute; the server's own
    // spans carry it, and the client-observed comm (wire blocked time)
    // necessarily covers it.
    assert!(reports.iter().all(|r| r.server_compute == Duration::ZERO));
    assert!(merged.server_compute > Duration::ZERO);
    assert!(merged.comm >= merged.server_compute);

    for (phase, bridged) in [
        (Phase::ClientEncrypt, merged.client_encrypt),
        (Phase::Comm, merged.comm),
        (Phase::ServerCompute, merged.server_compute),
        (Phase::ClientDecrypt, merged.client_decrypt),
    ] {
        let hist = registry.phase_histogram(phase).snapshot();
        assert_eq!(
            hist.sum(),
            bridged,
            "registry histogram matches span bridge for {}",
            phase.label()
        );
        let series = format!(
            "pps_phase_duration_seconds_sum{{phase=\"{}\"}} ",
            phase.label()
        );
        let scraped = sample(&body, &series)
            .unwrap_or_else(|| panic!("no scraped sum for {}", phase.label()));
        assert!(
            (scraped - bridged.as_secs_f64()).abs() < 1e-9,
            "{}: scraped {scraped} vs bridged {}",
            phase.label(),
            bridged.as_secs_f64()
        );
        let count_series = format!(
            "pps_phase_duration_seconds_count{{phase=\"{}\"}} ",
            phase.label()
        );
        assert!(sample(&body, &count_series).unwrap() >= 1.0);
    }

    // One batch per healthy query at the default batch size, so the
    // encrypt histogram carries exactly one sample per client.
    assert_eq!(
        registry
            .phase_histogram(Phase::ClientEncrypt)
            .snapshot()
            .count,
        3
    );

    // /healthz serves alongside /metrics.
    let (status, health) = http::get(metrics_addr, "/healthz").unwrap();
    assert!(status.contains("200"), "{status}");
    assert!(health.contains(r#""status":"ok""#), "{health}");

    metrics.stop();
}
