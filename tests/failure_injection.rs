//! Failure injection: malformed frames, invalid ciphertexts, protocol
//! violations, overflow guards, and disconnects. A privacy-preserving
//! server must *reject* anomalous input — folding a non-group element
//! into the product or accepting a desynchronized stream silently would
//! be a correctness and security bug.
//!
//! The canonical database / client / frame fixtures live in
//! [`pps_sim::harness::proto`], shared with the simulator's byzantine
//! campaigns — `setup()` here is the same fixture those campaigns
//! attack at population scale.

use pps::prelude::*;
use pps::protocol::messages::{Hello, IndexBatch, MsgType, PlainIndices};
use pps::protocol::{ProtocolError, ServerSession};
use pps::transport::{ChannelWire, Frame, LinkProfile, SimLink, TransportError, Wire};
use pps_bignum::Uint;
use pps_sim::harness::proto::{fixture as setup, hello_frame};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn server_rejects_zero_ciphertext() {
    // 0 is not in Z*_{N²}; a malicious client could use degenerate values
    // to corrupt the product. Decode must refuse.
    let (db, client, _) = setup();
    let key = &client.keypair().public;
    let mut server = ServerSession::new(&db);
    server.on_frame(&hello_frame(&client, 4)).unwrap();

    let w = key.ciphertext_bytes();
    // [seq u64 = 0][count u32 = 4][4 all-zero ciphertexts]
    let mut payload = vec![0u8; 12 + 4 * w];
    payload[8..12].copy_from_slice(&4u32.to_be_bytes());
    let frame = Frame::new(MsgType::IndexBatch as u8, payload).unwrap();
    let err = server.on_frame(&frame).unwrap_err();
    assert!(
        matches!(err, ProtocolError::Crypto(_)),
        "a non-group element must be rejected as a typed crypto error, got {err:?}"
    );
}

#[test]
fn server_rejects_ciphertext_sharing_factor_with_n() {
    let (_db, client, _) = setup();
    let key = client.keypair().public.clone();
    // N itself shares a factor with N — invalid group element.
    let n_bytes = key.n().to_bytes_be_padded(key.ciphertext_bytes()).unwrap();
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_be_bytes());
    payload.extend_from_slice(&1u32.to_be_bytes());
    payload.extend_from_slice(&n_bytes);
    let frame = Frame::new(MsgType::IndexBatch as u8, payload).unwrap();
    assert!(IndexBatch::decode(&frame, &key).is_err());
}

#[test]
fn server_rejects_truncated_batch() {
    let (db, client, mut rng) = setup();
    let key = &client.keypair().public;
    let mut server = ServerSession::new(&db);
    server.on_frame(&hello_frame(&client, 4)).unwrap();

    let ct = key.encrypt_u64(1, &mut rng).unwrap();
    let good = IndexBatch {
        seq: 0,
        ciphertexts: vec![ct],
    }
    .encode(key)
    .unwrap();
    // Chop ten bytes off the end.
    let truncated = Frame::new(
        MsgType::IndexBatch as u8,
        good.payload.slice(..good.payload.len() - 10),
    )
    .unwrap();
    assert!(server.on_frame(&truncated).is_err());
}

#[test]
fn server_rejects_overcount_and_double_hello() {
    let (db, client, mut rng) = setup();
    let key = &client.keypair().public;
    let mut server = ServerSession::new(&db);
    server.on_frame(&hello_frame(&client, 4)).unwrap();
    assert!(
        server.on_frame(&hello_frame(&client, 4)).is_err(),
        "double hello"
    );

    let cts: Vec<_> = (0..5)
        .map(|_| key.encrypt_u64(0, &mut rng).unwrap())
        .collect();
    let frame = IndexBatch {
        seq: 0,
        ciphertexts: cts,
    }
    .encode(key)
    .unwrap();
    assert!(
        server.on_frame(&frame).is_err(),
        "five indices for a four-row database"
    );
}

#[test]
fn server_rejects_unknown_message_types() {
    let (db, _, _) = setup();
    let mut server = ServerSession::new(&db);
    for t in [0u8, 3, 5, 6, 99, 255] {
        let frame = Frame::new(t, vec![1, 2, 3]).unwrap();
        assert!(
            server.on_frame(&frame).is_err(),
            "type {t} must be rejected"
        );
    }
}

#[test]
fn server_rejects_wrong_total_announcement() {
    let (db, client, _) = setup();
    let mut server = ServerSession::new(&db);
    assert!(server.on_frame(&hello_frame(&client, 3)).is_err());
    let mut server2 = ServerSession::new(&db);
    assert!(server2.on_frame(&hello_frame(&client, 1_000_000)).is_err());
}

#[test]
fn server_rejects_even_modulus() {
    let (db, _, _) = setup();
    let mut server = ServerSession::new(&db);
    let bad = Hello {
        modulus: Uint::one().shl(128),
        total: 4,
        batch_size: 4,
        trace: None,
    }
    .encode()
    .unwrap();
    assert!(server.on_frame(&bad).is_err());
}

#[test]
fn plain_baseline_rejects_out_of_range_index() {
    let (db, _, _) = setup();
    let mut server = ServerSession::new(&db);
    let req = PlainIndices {
        indices: vec![0, 4],
    }
    .encode()
    .unwrap();
    assert!(server.on_frame(&req).is_err());
}

#[test]
fn frame_desync_detected() {
    use bytes::BytesMut;
    let good = Frame::new(2, vec![7u8; 8]).unwrap().encode();
    // Drop the first byte: magic check must fire rather than misparse.
    let mut buf = BytesMut::from(&good[1..]);
    assert!(matches!(
        Frame::decode(&mut buf),
        Err(TransportError::Malformed(_)) | Ok(None)
    ));
}

#[test]
fn disconnect_mid_protocol_is_an_error_not_a_hang() {
    let (db, client, mut rng) = setup();
    let sel = Selection::from_bits(&[true, false, true, false]);
    let (mut cw, sw) = SimLink::pair(LinkProfile::gigabit_lan());
    let mut source = pps::protocol::IndexSource::Fresh(&mut rng);
    client.send_query(&mut cw, &sel, 4, &mut source).unwrap();
    drop(sw); // server vanishes
    assert!(matches!(
        client.receive_result(&mut cw),
        Err(ProtocolError::Transport(TransportError::Disconnected))
    ));
    let _ = db;
}

#[test]
fn threaded_disconnect_surfaces() {
    // A client that sends a corrupt stream makes the server error out and
    // hang up; the client then observes Disconnected instead of blocking.
    let (mut cw, mut sw) = ChannelWire::pair();
    let (db, _, _) = setup();
    let handle = std::thread::spawn(move || {
        let mut server = ServerSession::new(&db);
        let frame = sw.recv().unwrap();
        server.on_frame(&frame).unwrap_err() // garbage in, error out
    });
    cw.send(Frame::new(250, vec![0u8; 3]).unwrap()).unwrap();
    let err = handle.join().unwrap();
    assert!(matches!(
        err,
        ProtocolError::Transport(_) | ProtocolError::UnexpectedMessage(_)
    ));
    assert!(matches!(cw.recv(), Err(TransportError::Disconnected)));
}

#[test]
fn overflow_guard_refuses_oversized_sums() {
    // n · max < N must hold; otherwise the decrypted sum silently wraps,
    // which database privacy makes undetectable. The library refuses.
    let mut rng = StdRng::seed_from_u64(67);
    let client = SumClient::generate(64, &mut rng).unwrap();
    let db = Database::new(vec![u64::MAX / 4; 16]).unwrap();
    let sel = Selection::from_bits(&[true; 16]);
    assert!(matches!(
        pps::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng),
        Err(ProtocolError::SumOverflow { .. })
    ));
}

#[test]
fn pool_exhaustion_is_an_error() {
    use pps_crypto::BitEncryptionPool;
    let (_, client, mut rng) = setup();
    let mut pool = BitEncryptionPool::new(client.keypair().public.clone());
    pool.fill(1, 1, &mut rng).unwrap();
    let sel = Selection::from_bits(&[true, true, false, false]); // needs 2 ones, 2 zeros
    let (mut cw, _sw) = SimLink::pair(LinkProfile::gigabit_lan());
    let mut source = pps::protocol::IndexSource::BitPool(&mut pool);
    assert!(client.send_query(&mut cw, &sel, 4, &mut source).is_err());
}
