//! Integration tests for the extension features beyond the paper's core
//! experiments: the real TCP transport, multi-database queries, bivariate
//! statistics, free-XOR garbling, and key serialization — each exercised
//! across crate boundaries.

use pps::prelude::*;
use pps::protocol::{run_multidb, run_multidb_blinded, IndexSource, Partition, ServerSession};
use pps::stats::{private_paired_moments, PairedDatabase};
use pps::transport::{LinkProfile, TcpWire, Wire};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn full_protocol_over_real_tcp_sockets() {
    // The same state machines that run over simulated links run over a
    // real TCP loopback connection with a threaded server.
    let mut rng = StdRng::seed_from_u64(9000);
    let db = Database::random_32bit(120, &mut rng).unwrap();
    let sel = Selection::random(120, 0.5, &mut rng).unwrap();
    let client = SumClient::generate(256, &mut rng).unwrap();
    let expected = db.oracle_sum(&sel).unwrap();

    let (mut cw, mut sw) = TcpWire::pair_loopback().unwrap();
    let db_server = db.clone();
    let server_thread = std::thread::spawn(move || {
        let mut server = ServerSession::new(&db_server);
        while !server.is_done() {
            let frame = sw.recv().unwrap();
            if let Some(reply) = server.on_frame(&frame).unwrap() {
                sw.send(reply).unwrap();
            }
        }
        sw.stats().payload_bytes_received
    });

    let mut source = IndexSource::Fresh(&mut rng);
    client.send_query(&mut cw, &sel, 30, &mut source).unwrap();
    let (sum, _) = client.receive_result(&mut cw).unwrap();
    assert_eq!(sum.to_u128().unwrap(), expected);

    let server_bytes = server_thread.join().unwrap();
    assert_eq!(
        server_bytes,
        cw.stats().payload_bytes_sent,
        "bytes counted identically at both socket endpoints"
    );
}

#[test]
fn multidb_plain_and_blinded_agree() {
    let mut rng = StdRng::seed_from_u64(9001);
    let partitions: Vec<Partition> = [30usize, 45, 25]
        .iter()
        .map(|&n| Partition {
            db: Database::random(n, 2_000, &mut rng).unwrap(),
            selection: Selection::random(n, 0.4, &mut rng).unwrap(),
        })
        .collect();
    let client = SumClient::generate(192, &mut rng).unwrap();

    let (_, plain_total) =
        run_multidb(&partitions, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    let (report, blinded_total) =
        run_multidb_blinded(&partitions, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();

    assert_eq!(plain_total, blinded_total);
    assert_eq!(report.n, 100);
    // Blinded flavor sends the same upstream traffic (same index vectors).
    assert!(report.bytes_to_server >= 100 * client.keypair().public.ciphertext_bytes());
}

#[test]
fn covariance_agrees_with_univariate_queries() {
    // sum_x from the paired query must equal the plain private sum of x.
    let mut rng = StdRng::seed_from_u64(9002);
    let n = 50;
    let x: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
    let y: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
    let sel = Selection::random(n, 0.5, &mut rng).unwrap();
    let client = SumClient::generate(192, &mut rng).unwrap();

    let paired = PairedDatabase::new(x.clone(), y).unwrap();
    let r = private_paired_moments(&paired, &sel, &client, LinkProfile::gigabit_lan(), &mut rng)
        .unwrap();

    let db_x = Database::new(x).unwrap();
    let single =
        pps::run_basic(&db_x, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(r.sum_x, single.result);
    assert_eq!(r.count, sel.selected_count() as u128);
    if let Some(corr) = r.correlation() {
        assert!((-1.0..=1.0).contains(&corr));
    }
}

#[test]
fn free_xor_and_classic_gc_agree_and_free_xor_is_smaller() {
    use pps::gc::{
        evaluate, evaluate_free_xor, garble, garble_free_xor, pack_selected_sum_garbler_values,
        selected_sum_circuit, Label,
    };
    let mut rng = StdRng::seed_from_u64(9003);
    let n = 10;
    let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..4096)).collect();
    let sel: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let (circuit, _) = selected_sum_circuit(n, 12);
    let gv = pack_selected_sum_garbler_values(&values, 12, &circuit);

    let (classic, s1) = garble(&circuit, &mut rng);
    let gl1 = s1.garbler_input_labels(&circuit, &gv).unwrap();
    let el1: Vec<Label> = sel
        .iter()
        .enumerate()
        .map(|(i, &v)| s1.evaluator_input_pair(&circuit, i).select(v))
        .collect();
    let out_classic = evaluate(&circuit, &classic, &gl1, &el1).unwrap();

    let (fx, s2) = garble_free_xor(&circuit, &mut rng);
    let gl2 = s2.garbler_input_labels(&circuit, &gv).unwrap();
    let el2: Vec<Label> = sel
        .iter()
        .enumerate()
        .map(|(i, &v)| s2.evaluator_input_pair(&circuit, i).select(v))
        .collect();
    let out_fx = evaluate_free_xor(&circuit, &fx, &gl2, &el2).unwrap();

    assert_eq!(out_classic, out_fx);
    // A full adder is 2 XOR + 2 AND + 1 OR (40% XOR), so the tables
    // shrink by roughly the XOR fraction of the circuit.
    assert_eq!(fx.tables.len(), circuit.nonlinear_gates());
    let ratio = fx.wire_size() as f64 / classic.wire_size() as f64;
    assert!(
        ratio < 0.75,
        "free-XOR must drop the XOR tables, ratio={ratio}"
    );
}

#[test]
fn serialized_keys_survive_a_protocol_round_trip() {
    use pps::crypto::{PaillierPublicKey, PaillierSecretKey};
    let mut rng = StdRng::seed_from_u64(9004);
    let original = SumClient::generate(192, &mut rng).unwrap();

    // Ship the public key as bytes (as a real deployment would), restore,
    // and verify a server built from the restored key interoperates.
    let pub_bytes = original.keypair().public.to_bytes();
    let restored_pub = PaillierPublicKey::from_bytes(&pub_bytes).unwrap();
    assert_eq!(&restored_pub, &original.keypair().public);

    // Restore the full keypair from secret bytes and run the protocol.
    let sec_bytes = original.keypair().secret.to_bytes();
    let restored = SumClient::new(PaillierSecretKey::keypair_from_bytes(&sec_bytes).unwrap());

    let db = Database::new(vec![11, 22, 33]).unwrap();
    let sel = Selection::from_bits(&[true, false, true]);
    let r = pps::run_basic(&db, &sel, &restored, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(r.result, 44);
}

#[test]
fn general_paillier_interops_with_protocol_key() {
    use pps::bignum::Uint;
    use pps::crypto::GeneralPaillier;
    let mut rng = StdRng::seed_from_u64(9005);
    let gp = GeneralPaillier::generate(128, &mut rng).unwrap();
    // Round trip through the general scheme.
    let ct = gp.encrypt(&Uint::from_u64(777), &mut rng).unwrap();
    assert_eq!(gp.decrypt(&ct).unwrap(), Uint::from_u64(777));
}
