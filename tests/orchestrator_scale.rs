//! Scale smoke test for the event-driven orchestrator: ten thousand
//! loopback sessions multiplexed over a bounded worker pool, with a
//! hold phase that keeps two thousand sessions simultaneously open —
//! an order of magnitude past what thread-per-connection admission was
//! sized for, and the acceptance proof for the ≥ 1k-concurrent-sessions
//! criterion.
//!
//! Every session replays the same pre-encoded query (one 128-bit key,
//! one `Hello`, one `IndexBatch`), so the server's `Product` reply is
//! bitwise identical across sessions: one warm-up session decrypts it
//! against the plaintext selected sum (the oracle), and the other
//! 9 999 sessions byte-compare their reply against that reference.

use std::io::{Read as IoRead, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use pps_protocol::messages::{Hello, IndexBatch, MsgType};
use pps_protocol::{Database, FoldStrategy, Selection, ServeEngine, SumClient, TcpServer};
use pps_transport::{TcpWire, Wire};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOTAL_SESSIONS: usize = 10_000;
const HOLD_CONCURRENT: usize = 2_000;
const CHUNK: usize = 256;

/// One pre-encoded session: the bytes every client writes, and the
/// reply bytes every client must read back.
struct Replay {
    hello: Vec<u8>,
    batch: Vec<u8>,
    hello_ack_len: usize,
    product: Vec<u8>,
}

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s
}

/// Reads exactly `len` bytes (a whole frame of known width).
fn read_frame_bytes(s: &mut TcpStream, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    s.read_exact(&mut buf).unwrap();
    buf
}

#[test]
fn ten_thousand_sessions_multiplex_over_the_event_engine() {
    let db_rows: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
    let select = [0usize, 2, 5, 7];
    let expected: u64 = select.iter().map(|&i| db_rows[i]).sum(); // 3+4+9+6

    let mut rng = StdRng::seed_from_u64(4242);
    let client = SumClient::generate(128, &mut rng).unwrap();
    let selection = Selection::from_indices(db_rows.len(), &select).unwrap();

    // Pre-encode the whole query once; every session replays these bytes.
    let hello_frame = Hello {
        modulus: client.keypair().public.n().clone(),
        total: selection.len() as u64,
        batch_size: selection.len() as u32,
        trace: None,
    }
    .encode()
    .unwrap();
    let cts: Vec<_> = selection
        .weights()
        .iter()
        .map(|&w| client.keypair().public.encrypt_u64(w, &mut rng).unwrap())
        .collect();
    let batch_frame = IndexBatch {
        seq: 0,
        ciphertexts: cts,
    }
    .encode(&client.keypair().public)
    .unwrap();

    let server = TcpServer::bind(
        Arc::new(Database::new(db_rows).unwrap()),
        "127.0.0.1:0",
        FoldStrategy::Incremental,
    )
    .unwrap()
    .with_engine(ServeEngine::Event)
    .with_workers(4);
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.serve(Some(TOTAL_SESSIONS)));

    // Warm-up session over the blocking wire: the oracle. Decrypt the
    // product and pin the exact reply bytes every replay must see.
    let replay = {
        let mut wire = TcpWire::new(connect(addr));
        wire.send(hello_frame.clone()).unwrap();
        let ack = wire.recv().unwrap();
        assert_eq!(ack.msg_type, MsgType::HelloAck as u8);
        wire.send(batch_frame.clone()).unwrap();
        let product = wire.recv().unwrap();
        assert_eq!(product.msg_type, MsgType::Product as u8);
        let (sum, _) = client.decrypt_product(&product).unwrap();
        assert_eq!(sum.to_u128().unwrap(), expected as u128, "oracle sum");
        Replay {
            hello: hello_frame.encode().to_vec(),
            batch: batch_frame.encode().to_vec(),
            hello_ack_len: ack.encoded_len(),
            product: product.encode().to_vec(),
        }
    };

    // Hold phase: open HOLD_CONCURRENT sessions, send only the Hello,
    // and collect every HelloAck before releasing any batch. Once the
    // last ack is in, all HOLD_CONCURRENT sessions are provably active
    // on the server at once — none can complete without its batch.
    let mut held: Vec<TcpStream> = Vec::with_capacity(HOLD_CONCURRENT);
    for _ in 0..HOLD_CONCURRENT {
        let mut s = connect(addr);
        s.write_all(&replay.hello).unwrap();
        held.push(s);
    }
    for s in &mut held {
        read_frame_bytes(s, replay.hello_ack_len);
    }
    // Release: every held session finishes and must return the exact
    // reference product.
    for s in &mut held {
        s.write_all(&replay.batch).unwrap();
    }
    let mut completed = 1; // the warm-up
    for mut s in held {
        let got = read_frame_bytes(&mut s, replay.product.len());
        assert_eq!(got, replay.product, "held session product mismatch");
        completed += 1;
    }

    // Rolling chunks for the remaining sessions: write the whole query,
    // then read both replies back, CHUNK sessions in flight at a time.
    while completed < TOTAL_SESSIONS {
        let n = CHUNK.min(TOTAL_SESSIONS - completed);
        let mut chunk: Vec<TcpStream> = Vec::with_capacity(n);
        for _ in 0..n {
            let mut s = connect(addr);
            s.write_all(&replay.hello).unwrap();
            s.write_all(&replay.batch).unwrap();
            chunk.push(s);
        }
        for mut s in chunk {
            read_frame_bytes(&mut s, replay.hello_ack_len);
            let got = read_frame_bytes(&mut s, replay.product.len());
            assert_eq!(got, replay.product, "replayed session product mismatch");
            completed += 1;
        }
    }

    let stats = server_thread.join().unwrap();
    assert_eq!(stats.sessions, TOTAL_SESSIONS, "every session completed");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.evicted, 0);
    assert_eq!(stats.refused, 0);
    assert_eq!(stats.panicked, 0);
    assert!(
        stats.peak_active >= 1_000,
        "the hold phase kept at least 1k sessions concurrently active \
         (observed peak {})",
        stats.peak_active
    );
}
