//! Fold-strategy parity: for random databases, selections, and batch
//! geometries, every server fold strategy — the paper's incremental
//! loop, Straus multi-exponentiation, its parallel variant, and the
//! precomputed per-database plan — decrypts to the **bit-identical**
//! selected sum, which equals the plaintext oracle. The same encrypted
//! frames are replayed into every strategy's session, so any divergence
//! is the fold's fault, not the randomness's.
//!
//! Also proves the resume story for [`FoldStrategy::Precomputed`]: a
//! checkpoint taken mid-stream under the plan resumes correctly —
//! through a rebuilt plan, through a caller-shared plan, and across
//! strategies in both directions (the checkpoint is strategy-agnostic
//! by construction, so cross-strategy resume is *correct*, not
//! rejected).

use std::sync::{Arc, OnceLock};

use pps_bignum::MultiExpPlan;
use pps_crypto::PaillierKeypair;
use pps_protocol::messages::{Hello, IndexBatch, Product};
use pps_protocol::{Database, FoldStrategy, Selection, ServerSession};
use pps_transport::Frame;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One keypair for the whole suite (keygen dwarfs every case).
fn keypair() -> &'static PaillierKeypair {
    static KP: OnceLock<PaillierKeypair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xf01d_9a41);
        PaillierKeypair::generate(128, &mut rng).unwrap()
    })
}

/// Encrypts `bits` once and chunks the stream into `batch`-sized
/// frames — the identical byte-for-byte input for every strategy.
fn encode_query(bits: &[u64], batch: usize, rng: &mut StdRng) -> Vec<Frame> {
    let kp = keypair();
    let hello = Hello {
        modulus: kp.public.n().clone(),
        total: bits.len() as u64,
        batch_size: batch as u32,
        trace: None,
    }
    .encode()
    .unwrap();
    let cts: Vec<_> = bits
        .iter()
        .map(|&b| kp.public.encrypt_u64(b, rng).unwrap())
        .collect();
    std::iter::once(hello)
        .chain(cts.chunks(batch).enumerate().map(|(seq, chunk)| {
            IndexBatch {
                seq: seq as u64,
                ciphertexts: chunk.to_vec(),
            }
            .encode(&kp.public)
            .unwrap()
        }))
        .collect()
}

/// Replays pre-encoded frames into a fresh session and returns the
/// decrypted sum (as the raw decrypted `Uint`, so equality between
/// strategies is bit-level, not merely numeric-after-truncation).
fn replay(db: &Database, frames: &[Frame], strategy: FoldStrategy) -> (u128, Vec<u8>) {
    let kp = keypair();
    let mut session = ServerSession::with_fold(db, strategy);
    let mut reply = None;
    for frame in frames {
        reply = session.on_frame(frame).unwrap();
    }
    let product = Product::decode(&reply.expect("last batch completes"), &kp.public).unwrap();
    let sum = kp.secret.decrypt(&product.ciphertext).unwrap();
    (sum.to_u128().unwrap(), sum.to_bytes_be())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_fold_strategies_decrypt_to_the_identical_oracle_sum(
        values in prop::collection::vec(0u64..1_000_000, 1..48),
        seed in any::<u64>(),
        batch in 1usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = Database::new(values.clone()).unwrap();
        let bits: Vec<u64> = (0..values.len()).map(|_| rng.gen_range(0u64..2)).collect();
        let oracle = db.oracle_sum(&Selection::weighted(bits.clone())).unwrap();
        let frames = encode_query(&bits, batch, &mut rng);

        let (inc, inc_bytes) = replay(&db, &frames, FoldStrategy::Incremental);
        let (me, me_bytes) = replay(&db, &frames, FoldStrategy::MultiExp);
        let (par, par_bytes) = replay(&db, &frames, FoldStrategy::ParallelMultiExp);
        let (pre, pre_bytes) = replay(&db, &frames, FoldStrategy::Precomputed);

        prop_assert_eq!(inc, oracle);
        prop_assert_eq!(me, oracle);
        prop_assert_eq!(par, oracle);
        prop_assert_eq!(pre, oracle);
        // Bit-identical plaintexts, not merely equal u128 projections.
        prop_assert_eq!(&pre_bytes, &inc_bytes);
        prop_assert_eq!(&pre_bytes, &me_bytes);
        prop_assert_eq!(&pre_bytes, &par_bytes);
    }

    /// A checkpoint taken under `Precomputed` mid-stream resumes
    /// correctly — under a rebuilt plan, a shared plan, or any *other*
    /// strategy — and every resumed path decrypts to the oracle sum.
    #[test]
    fn precomputed_checkpoints_resume_correctly_and_cross_strategy(
        values in prop::collection::vec(0u64..1_000_000, 4..32),
        seed in any::<u64>(),
    ) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let db = Database::new(values.clone()).unwrap();
        let bits: Vec<u64> = (0..values.len()).map(|_| rng.gen_range(0u64..2)).collect();
        let oracle = db.oracle_sum(&Selection::weighted(bits.clone())).unwrap();
        let batch = (values.len() / 2).max(1);
        let frames = encode_query(&bits, batch, &mut rng);
        prop_assume!(frames.len() >= 3); // hello + at least two batches

        // Drive the first batch under Precomputed, then checkpoint.
        let mut first = ServerSession::with_fold(&db, FoldStrategy::Precomputed);
        first.on_frame(&frames[0]).unwrap();
        first.on_frame(&frames[1]).unwrap();
        let cp = first.checkpoint().expect("mid-stream checkpoint");

        let finish = |mut session: ServerSession<'_>| {
            let mut reply = None;
            for frame in &frames[2..] {
                reply = session.on_frame(frame).unwrap();
            }
            let product =
                Product::decode(&reply.expect("final batch replies"), &kp.public).unwrap();
            kp.secret
                .decrypt(&product.ciphertext)
                .unwrap()
                .to_u128()
                .unwrap()
        };

        // Same strategy, plan rebuilt from the database.
        let rebuilt =
            ServerSession::resume(&db, FoldStrategy::Precomputed, cp.clone()).unwrap();
        prop_assert_eq!(finish(rebuilt), oracle);

        // Same strategy, caller-shared plan (the TcpServer path).
        let plan = Arc::new(MultiExpPlan::build(db.values()));
        let shared = ServerSession::resume_with_plan(&db, plan, cp.clone()).unwrap();
        prop_assert_eq!(finish(shared), oracle);

        // Cross-strategy: the checkpoint carries only accumulator and
        // cursor, so any strategy may continue it.
        let crossed = ServerSession::resume(&db, FoldStrategy::MultiExp, cp).unwrap();
        prop_assert_eq!(finish(crossed), oracle);

        // And the reverse direction: checkpoint under MultiExp,
        // continue under Precomputed.
        let mut me = ServerSession::with_fold(&db, FoldStrategy::MultiExp);
        me.on_frame(&frames[0]).unwrap();
        me.on_frame(&frames[1]).unwrap();
        let cp_me = me.checkpoint().expect("mid-stream checkpoint");
        let back = ServerSession::resume(&db, FoldStrategy::Precomputed, cp_me).unwrap();
        prop_assert_eq!(finish(back), oracle);
    }
}
