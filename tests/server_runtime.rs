//! Concurrent server-runtime tests: one [`TcpServer`] over loopback,
//! several real client threads with distinct private selections, every
//! result checked against the plaintext oracle — plus a property test
//! that the parallel fold strategy is indistinguishable (after
//! decryption) from the paper's incremental loop.

use std::net::SocketAddr;
use std::sync::Arc;

use pps_crypto::PaillierKeypair;
use pps_protocol::messages::{Hello, IndexBatch, Product};
use pps_protocol::{
    Database, FoldStrategy, IndexSource, Selection, ServerSession, SumClient, TcpServer,
};
use pps_transport::TcpWire;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs one full private query against a listening server and returns
/// the decrypted sum.
fn query(addr: SocketAddr, selection: &Selection, batch: usize, seed: u64) -> u128 {
    let mut rng = StdRng::seed_from_u64(seed);
    let client = SumClient::generate(128, &mut rng).unwrap();
    let mut wire = TcpWire::connect(&addr.to_string()).unwrap();
    let mut source = IndexSource::Fresh(&mut rng);
    client
        .send_query(&mut wire, selection, batch, &mut source)
        .unwrap();
    let (sum, _) = client.receive_result(&mut wire).unwrap();
    sum.to_u128().unwrap()
}

#[test]
fn four_concurrent_sessions_with_distinct_selections() {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 96;
    let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..10_000)).collect();
    let db = Arc::new(Database::new(values).unwrap());

    // Exercise the parallel fold end to end (on a single-core host it
    // falls back to the sequential chain — same answers either way).
    let server = TcpServer::bind(
        Arc::clone(&db),
        "127.0.0.1:0",
        FoldStrategy::ParallelMultiExp,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();

    // Four clients, each selecting a different residue class mod 4, plus
    // one selecting everything: distinct answers, overlapping coverage.
    let selections: Vec<Selection> = (0..4)
        .map(|r| {
            let idx: Vec<usize> = (0..n).filter(|i| i % 4 == r).collect();
            Selection::from_indices(n, &idx).unwrap()
        })
        .chain([Selection::from_indices(n, &(0..n).collect::<Vec<_>>()).unwrap()])
        .collect();
    let oracles: Vec<u128> = selections
        .iter()
        .map(|s| db.oracle_sum(s).unwrap())
        .collect();

    let clients = std::thread::spawn(move || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = selections
                .iter()
                .enumerate()
                .map(|(i, sel)| scope.spawn(move || query(addr, sel, 32, 100 + i as u64)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<u128>>()
        })
    });

    let stats = server.serve(Some(5));
    let sums = clients.join().unwrap();

    assert_eq!(sums, oracles, "every session returns its oracle sum");
    assert_eq!(stats.sessions, 5);
    assert_eq!(stats.failed, 0);
    // Every client streams one ciphertext per database row, so the
    // folded counts must sum to sessions × n.
    assert_eq!(stats.folded, 5 * n);
    assert!(stats.throughput() > 0.0);
    assert!(stats.compute <= stats.wall + stats.compute, "sanity");
}

#[test]
fn sessions_overlap_in_time() {
    // A slow client connects first and stalls mid-stream; a fast client
    // connects second and must complete while the first is still open —
    // the thread-per-connection runtime must not serialize them.
    let db = Arc::new(Database::new(vec![5, 6, 7, 8]).unwrap());
    let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::MultiExp).unwrap();
    let addr = server.local_addr().unwrap();

    let slow = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(7);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let mut wire = TcpWire::connect(&addr.to_string()).unwrap();
        let sel = Selection::from_indices(4, &[0, 3]).unwrap();
        // Hold the connection open, silent, while the fast client runs.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let mut source = IndexSource::Fresh(&mut rng);
        client.send_query(&mut wire, &sel, 2, &mut source).unwrap();
        let (sum, _) = client.receive_result(&mut wire).unwrap();
        sum.to_u128().unwrap()
    });
    // Give the slow client time to be accepted first.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let fast = std::thread::spawn(move || {
        let start = std::time::Instant::now();
        let sum = query(addr, &Selection::from_indices(4, &[1, 2]).unwrap(), 4, 8);
        (sum, start.elapsed())
    });

    let stats = server.serve(Some(2));
    let slow_sum = slow.join().unwrap();
    let (fast_sum, fast_elapsed) = fast.join().unwrap();
    assert_eq!(slow_sum, 13);
    assert_eq!(fast_sum, 13);
    assert_eq!(stats.sessions, 2);
    assert!(
        fast_elapsed < std::time::Duration::from_millis(300),
        "fast session finished in {fast_elapsed:?}, so it was not queued \
         behind the stalled one"
    );
}

/// Drives one single-batch session with the given fold strategy and
/// returns the decrypted sum.
fn fold_with(
    kp: &PaillierKeypair,
    db: &Database,
    bits: &[u64],
    strategy: FoldStrategy,
    rng: &mut StdRng,
) -> u128 {
    let n = db.len();
    let mut session = ServerSession::with_fold(db, strategy);
    let hello = Hello {
        modulus: kp.public.n().clone(),
        total: n as u64,
        batch_size: n as u32,
        trace: None,
    }
    .encode()
    .unwrap();
    session.on_frame(&hello).unwrap();
    let cts = bits
        .iter()
        .map(|&b| kp.public.encrypt_u64(b, rng).unwrap())
        .collect();
    let reply = session
        .on_frame(
            &IndexBatch {
                seq: 0,
                ciphertexts: cts,
            }
            .encode(&kp.public)
            .unwrap(),
        )
        .unwrap()
        .expect("single batch completes the session");
    let product = Product::decode(&reply, &kp.public).unwrap();
    kp.secret
        .decrypt(&product.ciphertext)
        .unwrap()
        .to_u128()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The parallel fold must decrypt to exactly the incremental fold's
    /// sum (and the oracle's) for random databases and selections.
    #[test]
    fn parallel_fold_matches_incremental_and_oracle(
        values in prop::collection::vec(1u64..1_000_000, 1..40),
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = PaillierKeypair::generate(128, &mut rng).unwrap();
        let db = Database::new(values.clone()).unwrap();
        let bits: Vec<u64> = (0..values.len()).map(|_| rng.gen_range(0u64..2)).collect();
        let oracle = db.oracle_sum(&Selection::weighted(bits.clone())).unwrap();

        let inc = fold_with(&kp, &db, &bits, FoldStrategy::Incremental, &mut rng);
        let par = fold_with(&kp, &db, &bits, FoldStrategy::ParallelMultiExp, &mut rng);
        prop_assert_eq!(inc, oracle);
        prop_assert_eq!(par, oracle);
    }
}
