//! Integration tests for the statistics layer and the multi-client
//! protocol, including agreement between the two paths and with plaintext
//! statistics.

use pps::prelude::*;
use pps::transport::LinkProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn private_moments_match_plaintext_statistics() {
    let mut rng = StdRng::seed_from_u64(100);
    let n = 200;
    let db = Database::random(n, 10_000, &mut rng).unwrap();
    let sel = Selection::random(n, 0.3, &mut rng).unwrap();
    let client = SumClient::generate(256, &mut rng).unwrap();

    let r = private_moments(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();

    let picked: Vec<f64> = db
        .values()
        .iter()
        .zip(sel.weights())
        .filter(|(_, &w)| w == 1)
        .map(|(&v, _)| v as f64)
        .collect();
    let mean = picked.iter().sum::<f64>() / picked.len() as f64;
    let var = picked.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / picked.len() as f64;

    assert_eq!(r.count, Some(picked.len() as u128));
    assert!((r.mean().unwrap() - mean).abs() < 1e-6);
    assert!((r.variance().unwrap() - var).abs() < 1e-3);
}

#[test]
fn weighted_mean_matches_plaintext() {
    let mut rng = StdRng::seed_from_u64(101);
    let db = Database::new(vec![12, 40, 8, 25, 60]).unwrap();
    let w = Selection::weighted(vec![2, 1, 0, 5, 2]);
    let client = SumClient::generate(256, &mut rng).unwrap();

    let got =
        private_weighted_mean(&db, &w, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    let expect = (2.0 * 12.0 + 40.0 + 5.0 * 25.0 + 2.0 * 60.0) / 10.0;
    assert!((got - expect).abs() < 1e-12);
}

#[test]
fn stats_sum_equals_protocol_sum() {
    // The stats layer and the base protocol must agree on the same query.
    let mut rng = StdRng::seed_from_u64(102);
    let db = Database::random_32bit(100, &mut rng).unwrap();
    let sel = Selection::random(100, 0.5, &mut rng).unwrap();
    let client = SumClient::generate(256, &mut rng).unwrap();

    let stats = pps::run_stats_query(
        &db,
        &sel,
        &client,
        LinkProfile::gigabit_lan(),
        Wants::sum_only(),
        &mut rng,
    )
    .unwrap();
    let protocol =
        pps::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(stats.sum, Some(protocol.result));
}

#[test]
fn multiclient_matches_single_client_for_various_k() {
    let mut rng = StdRng::seed_from_u64(103);
    let n = 60;
    let db = Database::random(n, 5_000, &mut rng).unwrap();
    let sel = Selection::random(n, 0.5, &mut rng).unwrap();
    let client = SumClient::generate(128, &mut rng).unwrap();
    let single = pps::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();

    for k in [1usize, 2, 3, 5, 6] {
        let multi =
            pps::run_multiclient(&db, &sel, k, 128, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(multi.aggregate.result, single.result, "k={k}");
        assert_eq!(multi.legs.len(), k);
        assert_eq!(multi.legs.iter().map(|l| l.shard_len).sum::<usize>(), n);
    }
}

#[test]
fn multiclient_with_paper_key_size() {
    let mut rng = StdRng::seed_from_u64(104);
    let n = 90;
    let db = Database::random_32bit(n, &mut rng).unwrap();
    let sel = Selection::random(n, 0.4, &mut rng).unwrap();
    let multi =
        pps::run_multiclient(&db, &sel, 3, 512, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    assert_eq!(multi.aggregate.result, db.oracle_sum(&sel).unwrap());
    assert_eq!(multi.aggregate.key_bits, 512);
}

#[test]
fn gc_and_homomorphic_protocols_agree() {
    // The two fundamentally different cryptographic routes must compute
    // the same function.
    let mut rng = StdRng::seed_from_u64(105);
    let kp = pps::crypto::PaillierKeypair::generate(256, &mut rng).unwrap();
    let client = SumClient::new(pps::crypto::PaillierKeypair::generate(256, &mut rng).unwrap());

    for _ in 0..3 {
        let n = rng.gen_range(2..12);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 16)).collect();
        let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();

        let gc = pps::gc::run_gc_selected_sum(&values, &bits, 16, &kp, &mut rng).unwrap();
        let db = Database::new(values).unwrap();
        let sel = Selection::from_bits(&bits);
        let he = pps::run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(gc.result, he.result);
    }
}

#[test]
fn stats_over_modem_profile() {
    // The stats layer inherits the link model; modem comm must dwarf LAN.
    let mut rng = StdRng::seed_from_u64(106);
    let db = Database::random(40, 100, &mut rng).unwrap();
    let sel = Selection::random(40, 0.5, &mut rng).unwrap();
    let client = SumClient::generate(128, &mut rng).unwrap();

    let lan = private_moments(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
    let modem = private_moments(&db, &sel, &client, LinkProfile::modem_56k(), &mut rng).unwrap();
    assert!(modem.timings.comm > lan.timings.comm * 100);
    assert_eq!(lan.sum, modem.sum);
}
