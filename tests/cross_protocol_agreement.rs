//! Property-based cross-protocol agreement: for random databases and
//! selections, every implemented route to the selected sum — plaintext
//! oracle, basic protocol, batched, preprocessed, multi-client, stats
//! layer, garbled circuit — produces the same number.
//!
//! Keys are generated once per proptest run (not per case) to keep the
//! suite fast; cases vary data, selection, and batch geometry.

use std::sync::OnceLock;

use pps::prelude::*;
use pps::transport::LinkProfile;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn client() -> &'static SumClient {
    static CLIENT: OnceLock<SumClient> = OnceLock::new();
    CLIENT.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xabcd);
        SumClient::generate(192, &mut rng).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_single_client_variants_agree(
        values in prop::collection::vec(0u64..1_000_000, 1..40),
        seed in any::<u64>(),
        batch in 1usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = values.len();
        let db = Database::new(values).unwrap();
        let sel = Selection::random(n, 0.5, &mut rng).unwrap();
        let expected = db.oracle_sum(&sel).unwrap();
        let c = client();

        let basic = pps::run_basic(&db, &sel, c, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        prop_assert_eq!(basic.result, expected);

        let batched = pps::run_batched(&db, &sel, c, LinkProfile::gigabit_lan(), batch, &mut rng)
            .unwrap();
        prop_assert_eq!(batched.result, expected);

        let prep = pps::run_preprocessed(&db, &sel, c, LinkProfile::gigabit_lan(), &mut rng)
            .unwrap();
        prop_assert_eq!(prep.result, expected);
    }

    #[test]
    fn multiclient_agrees(
        values in prop::collection::vec(0u64..1_000_000, 4..30),
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = values.len();
        let db = Database::new(values).unwrap();
        let sel = Selection::random(n, 0.5, &mut rng).unwrap();
        let expected = db.oracle_sum(&sel).unwrap();

        let multi = pps::run_multiclient(&db, &sel, k, 128, LinkProfile::gigabit_lan(), &mut rng)
            .unwrap();
        prop_assert_eq!(multi.aggregate.result, expected);
    }

    #[test]
    fn stats_layer_agrees(
        values in prop::collection::vec(0u64..100_000, 1..25),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = values.len();
        let db = Database::new(values).unwrap();
        let sel = Selection::random(n, 0.5, &mut rng).unwrap();
        let expected = db.oracle_sum(&sel).unwrap();
        let c = client();

        let stats = pps::run_stats_query(
            &db, &sel, c, LinkProfile::gigabit_lan(), Wants::all(), &mut rng,
        ).unwrap();
        prop_assert_eq!(stats.sum, Some(expected));
        prop_assert_eq!(stats.count, Some(sel.selected_count() as u128));
    }

    #[test]
    fn gc_agrees(
        values in prop::collection::vec(0u64..256, 1..8),
        bits in prop::collection::vec(any::<bool>(), 8),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = values.len();
        let selection: Vec<bool> = bits.into_iter().take(n).collect();
        let expected: u128 = values
            .iter()
            .zip(&selection)
            .filter(|(_, &s)| s)
            .map(|(&v, _)| v as u128)
            .sum();
        let gc = pps::gc::run_gc_selected_sum(
            &values, &selection, 8, client().keypair(), &mut rng,
        ).unwrap();
        prop_assert_eq!(gc.result, expected);
    }

    #[test]
    fn weighted_sum_agrees(
        pairs in prop::collection::vec((0u64..10_000, 0u64..16), 1..20),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (values, weights): (Vec<u64>, Vec<u64>) = pairs.into_iter().unzip();
        let expected: u128 = values
            .iter()
            .zip(&weights)
            .map(|(&v, &w)| v as u128 * w as u128)
            .sum();
        let db = Database::new(values).unwrap();
        let sel = Selection::weighted(weights);
        let r = pps::run_weighted(&db, &sel, client(), LinkProfile::gigabit_lan(), &mut rng)
            .unwrap();
        prop_assert_eq!(r.result, expected);
    }
}
