//! Engine parity: every externally observable behaviour of the server
//! runtime — eviction, queued admission, graceful shutdown, resume,
//! and bounded-queue refusal — must be identical whether sessions run
//! on the thread-per-connection engine or the event-driven orchestrator.
//! Each scenario below runs verbatim against both [`ServeEngine`]s.
//!
//! The head-of-line test is the acceptance proof for the admission
//! bugfix: with a one-slot server and a full bounded queue, a fourth
//! connection must be *refused promptly* while earlier clients are
//! still waiting — the old accept loop parked itself inside the
//! admission wait and could not even accept the fourth socket until
//! the slot-holder finished.

use std::io::{Read as IoRead, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pps_obs::{names, Registry};
use pps_protocol::ServerObs;
use pps_protocol::{
    run_stream_query_with_resume, run_tcp_query_with_retry, Admission, Database, FoldStrategy,
    ProtocolError, ServeEngine, SessionEvent, SessionLimits, SumClient, TcpQueryConfig,
    TcpQueryOutcome, TcpServer,
};
use pps_transport::{
    Fault, FaultSchedule, FaultyStream, RetryPolicy, StreamWire, TransportError, FRAME_MAGIC,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ENGINES: [ServeEngine; 2] = [ServeEngine::Threaded, ServeEngine::Event];

fn db4() -> Arc<Database> {
    Arc::new(Database::new(vec![10, 20, 30, 40]).unwrap())
}

/// Runs one healthy query and returns the sum.
fn healthy_query(addr: SocketAddr, select: &[usize], seed: u64) -> u128 {
    let mut rng = StdRng::seed_from_u64(seed);
    let client = SumClient::generate(128, &mut rng).unwrap();
    let out = run_tcp_query_with_retry(
        &addr.to_string(),
        &client,
        select,
        &TcpQueryConfig::default(),
        &mut rng,
    )
    .unwrap();
    out.sum
}

#[test]
fn slow_loris_is_evicted_on_both_engines() {
    for engine in ENGINES {
        let server = TcpServer::bind(db4(), "127.0.0.1:0", FoldStrategy::Incremental)
            .unwrap()
            .with_engine(engine)
            .with_workers(2)
            .with_limits(SessionLimits {
                read_timeout: Some(Duration::from_millis(250)),
                write_timeout: Some(Duration::from_secs(2)),
                session_deadline: Some(Duration::from_millis(400)),
            });
        let addr = server.local_addr().unwrap();

        let staller = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            let mut header = FRAME_MAGIC.to_be_bytes().to_vec();
            header.push(1);
            header.extend_from_slice(&64u32.to_be_bytes());
            s.write_all(&header).unwrap();
            for _ in 0..200 {
                std::thread::sleep(Duration::from_millis(30));
                if s.write_all(&[0]).is_err() {
                    break;
                }
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        let healthy = std::thread::spawn(move || healthy_query(addr, &[1, 3], 9));

        let evictions = Mutex::new(Vec::new());
        let start = Instant::now();
        let stats = server.serve_with(Some(2), &|event| {
            if let SessionEvent::Evicted { error, .. } = event {
                evictions.lock().unwrap().push(error.to_string());
            }
        });
        let served_in = start.elapsed();

        assert_eq!(healthy.join().unwrap(), 60, "{engine:?}: healthy client");
        assert_eq!(stats.sessions, 1, "{engine:?}: one completed session");
        assert_eq!(stats.evicted, 1, "{engine:?}: staller evicted");
        assert_eq!(stats.failed, 0, "{engine:?}: eviction is not a failure");
        let evictions = evictions.into_inner().unwrap();
        assert!(
            evictions.iter().any(|m| m.contains("timed out")),
            "{engine:?}: eviction surfaced as a timeout: {evictions:?}"
        );
        assert!(
            served_in < Duration::from_secs(5),
            "{engine:?}: eviction prompt ({served_in:?})"
        );
        staller.join().unwrap();
    }
}

#[test]
fn queued_admission_serves_every_client_on_both_engines() {
    for engine in ENGINES {
        let server = TcpServer::bind(db4(), "127.0.0.1:0", FoldStrategy::Incremental)
            .unwrap()
            .with_engine(engine)
            .with_workers(2)
            .with_admission(2, Admission::Queue);
        let addr = server.local_addr().unwrap();

        let clients = std::thread::spawn(move || {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..6)
                    .map(|i| scope.spawn(move || healthy_query(addr, &[0, 3], 40 + i)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            })
        });

        let stats = server.serve(Some(6));
        let sums = clients.join().unwrap();
        assert_eq!(sums, vec![50u128; 6], "{engine:?}");
        assert_eq!(stats.sessions, 6, "{engine:?}");
        assert_eq!(stats.failed, 0, "{engine:?}");
        assert_eq!(stats.refused, 0, "{engine:?}");
        assert!(stats.queued >= 1, "{engine:?}: someone waited in queue");
    }
}

#[test]
fn graceful_shutdown_drains_on_both_engines() {
    for engine in ENGINES {
        let server = TcpServer::bind(db4(), "127.0.0.1:0", FoldStrategy::Incremental)
            .unwrap()
            .with_engine(engine)
            .with_workers(2);
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();

        let server_thread = std::thread::spawn(move || server.serve(None));
        let sum = healthy_query(addr, &[0, 2], 77);
        handle.shutdown();
        let stats = server_thread.join().unwrap();

        assert_eq!(sum, 40, "{engine:?}: query served before shutdown");
        assert_eq!(stats.sessions, 1, "{engine:?}");
        assert_eq!(stats.failed, 0, "{engine:?}");
        // A second shutdown is an idempotent no-op.
        handle.shutdown();
    }
}

/// One query whose `attempt`-th connection gets `schedule(attempt)`
/// injected under the framing layer (chaos_resume's idiom).
fn faulty_query(
    addr: SocketAddr,
    client: &SumClient,
    select: &[usize],
    cfg: &TcpQueryConfig,
    rng: &mut StdRng,
    schedule: impl Fn(u32) -> FaultSchedule,
) -> Result<TcpQueryOutcome, ProtocolError> {
    let read_timeout = cfg.read_timeout;
    let mut connect = |attempt: u32| -> Result<StreamWire<FaultyStream<TcpStream>>, ProtocolError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))?;
        stream
            .set_read_timeout(read_timeout)
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))?;
        Ok(FaultyStream::wire(stream, schedule(attempt)))
    };
    run_stream_query_with_resume(&mut connect, client, select, cfg, rng)
}

#[test]
fn resume_after_disconnect_works_on_both_engines() {
    let n = 24usize;
    let db = Arc::new(Database::new((0..n as u64).map(|i| i * 7 + 3).collect()).unwrap());
    let select: Vec<usize> = (0..n).step_by(3).collect();
    let expected: u128 = select.iter().map(|&i| (i as u128) * 7 + 3).sum();

    for engine in ENGINES {
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::Incremental)
            .unwrap()
            .with_engine(engine)
            .with_workers(2);
        let addr = server.local_addr().unwrap();

        let stats = std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| server.serve(Some(2)));

            let mut rng = StdRng::seed_from_u64(404);
            let client = SumClient::generate(128, &mut rng).unwrap();
            let cfg = TcpQueryConfig {
                batch_size: 4,
                client_threads: 1,
                read_timeout: Some(Duration::from_secs(10)),
                write_timeout: Some(Duration::from_secs(10)),
                retry: RetryPolicy {
                    max_attempts: 4,
                    base_delay: Duration::from_millis(50),
                    max_delay: Duration::from_millis(200),
                },
                ..TcpQueryConfig::default()
            };
            // Client write ops: 0 = SizeRequest, 1 = Hello, 2.. = batches;
            // killing at write 4 leaves at least one batch checkpointed.
            let out = faulty_query(addr, &client, &select, &cfg, &mut rng, |attempt| {
                if attempt == 1 {
                    FaultSchedule::new().on_write(4, Fault::Disconnect)
                } else {
                    FaultSchedule::new()
                }
            })
            .unwrap();
            assert_eq!(out.sum, expected, "{engine:?}: resumed sum");
            assert_eq!(out.retry.attempts, 2, "{engine:?}");
            assert_eq!(
                out.resumed_attempts, 1,
                "{engine:?}: resumed, not re-issued"
            );
            server_thread.join().unwrap()
        });

        assert_eq!(stats.sessions, 1, "{engine:?}: one completed session");
        assert_eq!(stats.resumed, 1, "{engine:?}: server counted the resume");
        assert_eq!(stats.failed, 1, "{engine:?}: the killed first leg");
    }
}

#[test]
fn full_queue_refuses_promptly_while_accept_loop_stays_live() {
    // One slot, Queue admission, queue capacity 2. A staller holds the
    // slot; two healthy clients fill the queue; a probe connection must
    // then be refused (EOF) long before the staller releases the slot.
    // Under the old accept-thread-blocking admission the probe would not
    // even be accepted until the staller finished.
    for engine in ENGINES {
        let server = TcpServer::bind(db4(), "127.0.0.1:0", FoldStrategy::Incremental)
            .unwrap()
            .with_engine(engine)
            .with_workers(2)
            .with_admission(1, Admission::Queue)
            .with_queue_capacity(2)
            .with_limits(SessionLimits {
                read_timeout: Some(Duration::from_secs(3)),
                write_timeout: Some(Duration::from_secs(3)),
                session_deadline: Some(Duration::from_secs(10)),
            });
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let server_thread = std::thread::spawn(move || server.serve(None));

        let hold_for = Duration::from_millis(1200);
        let staller = std::thread::spawn(move || {
            // Holds the single slot by connecting and then going quiet;
            // closing after `hold_for` frees it (as a failed session).
            let s = TcpStream::connect(addr).unwrap();
            std::thread::sleep(hold_for);
            drop(s);
        });
        std::thread::sleep(Duration::from_millis(150));

        // Two clients fill the bounded queue and wait for the slot.
        let queued: Vec<_> = (0..2)
            .map(|i| std::thread::spawn(move || healthy_query(addr, &[1, 2], 60 + i)))
            .collect();
        std::thread::sleep(Duration::from_millis(250));

        // The probe: with the slot held and the queue full, this
        // connection must be turned away promptly.
        let probe = std::thread::spawn(move || {
            let start = Instant::now();
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = [0u8; 16];
            let n = s.read(&mut buf).unwrap_or(0);
            (n, start.elapsed())
        });

        let (n, refused_in) = probe.join().unwrap();
        assert_eq!(n, 0, "{engine:?}: refusal is a clean close");
        assert!(
            refused_in < Duration::from_millis(600),
            "{engine:?}: refusal must not wait for the slot-holder \
             (took {refused_in:?}, slot held for {hold_for:?})"
        );
        for (i, h) in queued.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), 50, "{engine:?}: queued client {i}");
        }
        staller.join().unwrap();
        handle.shutdown();
        let stats = server_thread.join().unwrap();

        assert_eq!(stats.sessions, 2, "{engine:?}: both queued clients served");
        assert_eq!(stats.refused, 1, "{engine:?}: the probe");
        assert_eq!(stats.failed, 1, "{engine:?}: the staller's dead session");
        assert_eq!(stats.queued, 2, "{engine:?}: both clients waited in queue");
    }
}

/// The engines must also be indistinguishable to a metrics scrape: the
/// same seeded client frame sequence yields identical wire frame and
/// byte counters whether the session ran on `StreamWire` (threaded) or
/// `NonBlockingWire` (event — the engine that wires metrics in through
/// `NonBlockingWire::set_metrics`).
#[test]
fn wire_metrics_agree_across_engines() {
    let mut scrapes = Vec::new();
    for engine in ENGINES {
        let registry = Arc::new(Registry::new());
        let server = TcpServer::bind(db4(), "127.0.0.1:0", FoldStrategy::Incremental)
            .unwrap()
            .with_engine(engine)
            .with_workers(2)
            .with_observability(ServerObs::new(Arc::clone(&registry)));
        let addr = server.local_addr().unwrap();

        let sum = std::thread::scope(|scope| {
            let server_thread = scope.spawn(|| server.serve(Some(1)));
            let sum = healthy_query(addr, &[1, 3], 9);
            server_thread.join().unwrap();
            sum
        });
        assert_eq!(sum, 60, "{engine:?}");

        // `Registry::counter` is find-or-insert, so these are the same
        // atomics the server's wire layer incremented.
        let read = |name| registry.counter(name, "").get();
        scrapes.push([
            read(names::WIRE_FRAMES_SENT_TOTAL),
            read(names::WIRE_BYTES_SENT_TOTAL),
            read(names::WIRE_FRAMES_RECEIVED_TOTAL),
            read(names::WIRE_BYTES_RECEIVED_TOTAL),
        ]);
    }

    let [threaded, event] = scrapes.as_slice() else {
        unreachable!()
    };
    assert_eq!(
        threaded, event,
        "frame/byte counters must not reveal the engine"
    );
    assert!(
        threaded.iter().all(|&c| c > 0),
        "counters actually moved: {threaded:?}"
    );
}
