//! Simulation-campaign integration suite: the CI matrix over every
//! registry scenario × both engines, the bit-reproducibility contract,
//! and the 2k-client mixed campaign from the issue's acceptance bar.
//!
//! Every assertion message carries the campaign's one-command repro
//! (`pps sim run --scenario <s> --seed <n> --engine <e>`), so a red CI
//! line is replayable locally without reading the test.

use pps_sim::harness::{assert_reproducible, run_named};
use pps_sim::SimEngine;

const SEED: u64 = 2026;

/// CI population for the per-scenario matrix: large enough that every
/// behavior class is represented, small enough to stay fast in debug
/// builds.
const MATRIX_POP: usize = 24;

#[test]
fn matrix_every_scenario_on_both_engines() {
    for scenario in pps_sim::Scenario::registry() {
        for engine in SimEngine::all() {
            let report = run_named(scenario.name, SEED, engine, Some(MATRIX_POP))
                .expect("registry scenario must run");
            println!(
                "{} — {} events, {} completions",
                report.repro(),
                report.events,
                report.completions
            );
            assert!(
                report.ok(),
                "invariant violation(s); repro: {}\n{}",
                report.repro(),
                report.render()
            );
        }
    }
}

#[test]
fn campaigns_are_bit_reproducible() {
    // Same (scenario, seed, engine) ⇒ identical event trace, metrics
    // snapshot, and event count — the double-run from the acceptance
    // bar. Distinct seeds must *not* collide, or the trace hash proves
    // nothing.
    for engine in SimEngine::all() {
        let a = assert_reproducible("mixed", SEED, engine, Some(48)).unwrap();
        let b = run_named("mixed", SEED + 1, engine, Some(48)).unwrap();
        assert_ne!(
            a.trace_hash,
            b.trace_hash,
            "different seeds produced the same trace ({})",
            engine.name()
        );
    }
}

#[test]
fn engines_agree_on_campaign_outcomes() {
    // The two service-scheduling models interleave differently (their
    // traces differ) but must agree on every externally visible
    // outcome: completions and a clean oracle verdict.
    for name in ["clean_lan", "churn", "byzantine", "shard"] {
        let t = run_named(name, SEED, SimEngine::Threaded, Some(MATRIX_POP)).unwrap();
        let e = run_named(name, SEED, SimEngine::Event, Some(MATRIX_POP)).unwrap();
        assert!(t.ok(), "repro: {}\n{}", t.repro(), t.render());
        assert!(e.ok(), "repro: {}\n{}", e.repro(), e.render());
        assert_eq!(
            t.completions, e.completions,
            "engines disagree on `{name}` completions"
        );
    }
}

#[test]
fn mixed_2k_campaign_passes_oracle_on_both_engines() {
    // The full acceptance campaign: 2000 clients mixing churn,
    // byzantine classes, slow-loris floods, and a partition window,
    // alternating the paper's two link profiles. Run at full scale in
    // release (CI runs this suite with --release); debug builds scale
    // to 400 so the suite stays usable locally.
    let population = if cfg!(debug_assertions) { 400 } else { 2000 };
    for engine in SimEngine::all() {
        let report = run_named("mixed", SEED, engine, Some(population)).unwrap();
        println!("{}", report.render());
        assert!(
            report.ok(),
            "invariant violation(s); repro: {}\n{}",
            report.repro(),
            report.render()
        );
        assert!(
            report.population >= population,
            "population under-scaled: {}",
            report.population
        );
        // A healthy campaign completes every honest-class client.
        assert!(
            report.completions > 0,
            "no completions at all; repro: {}",
            report.repro()
        );
    }
}
